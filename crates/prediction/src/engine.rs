//! The prediction engine: epochs, confidence, culling, and display.

use crate::overlay::{CellPrediction, CursorPrediction, Validity};
use crate::Millis;
use mosh_terminal::{Attrs, Cell, Framebuffer};

/// Engage predictions when SRTT rises above this (hysteresis high side).
pub const SRTT_TRIGGER_HIGH: f64 = 30.0;
/// Disengage when SRTT falls below this.
pub const SRTT_TRIGGER_LOW: f64 = 20.0;
/// Underline (flag) predictions when SRTT exceeds this.
pub const FLAG_TRIGGER_HIGH: f64 = 80.0;
/// Stop underlining when SRTT falls below this.
pub const FLAG_TRIGGER_LOW: f64 = 50.0;
/// A prediction outstanding longer than this is a "glitch": display and
/// flag predictions for a while even on fast links.
pub const GLITCH_THRESHOLD: Millis = 250;
/// How many quick confirmations cancel a glitch.
pub const GLITCH_REPAIR_COUNT: u32 = 10;

/// When to display speculative output (paper §3.2's behaviour is
/// `Adaptive`; the others aid testing and user preference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisplayPreference {
    /// Show predictions when the link is slow or glitchy (the default).
    #[default]
    Adaptive,
    /// Always show predictions immediately.
    Always,
    /// Never show predictions (paper's "Mosh (no predictions)" rows).
    Never,
}

/// Counters for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Keystrokes for which an echo prediction was made.
    pub predicted: u64,
    /// Keystrokes whose prediction was displayed at input time.
    pub displayed_instantly: u64,
    /// Keystrokes that made no prediction (navigation, control).
    pub unpredicted: u64,
    /// Predictions confirmed correct by the server.
    pub confirmed: u64,
    /// Predictions the server contradicted (repaired within an RTT).
    pub mispredicted: u64,
}

/// The speculative-echo engine. One per client session.
#[derive(Debug)]
pub struct PredictionEngine {
    cells: Vec<CellPrediction>,
    cursor: Option<CursorPrediction>,
    prediction_epoch: u64,
    confirmed_epoch: u64,
    srtt_trigger: bool,
    flagging: bool,
    glitch_trigger: u32,
    preference: DisplayPreference,
    /// Overwrite instead of insert (like `mosh --predict-overwrite`).
    predict_overwrite: bool,
    stats: PredictionStats,
    /// Size of the frame predictions were made against.
    width: usize,
    height: usize,
}

impl PredictionEngine {
    /// Creates an engine for a screen of the given size.
    pub fn new(preference: DisplayPreference) -> Self {
        PredictionEngine {
            cells: Vec::new(),
            cursor: None,
            prediction_epoch: 1,
            confirmed_epoch: 0,
            srtt_trigger: false,
            flagging: false,
            glitch_trigger: 0,
            preference,
            predict_overwrite: false,
            stats: PredictionStats::default(),
            width: 0,
            height: 0,
        }
    }

    /// Selects overwrite-style predictions (no row shifting).
    pub fn set_predict_overwrite(&mut self, overwrite: bool) {
        self.predict_overwrite = overwrite;
    }

    /// Evaluation counters.
    pub fn stats(&self) -> &PredictionStats {
        &self.stats
    }

    /// True when predictions would currently be shown to the user.
    pub fn engaged(&self) -> bool {
        match self.preference {
            DisplayPreference::Always => true,
            DisplayPreference::Never => false,
            DisplayPreference::Adaptive => self.srtt_trigger || self.glitch_trigger > 0,
        }
    }

    /// True if any displayable (non-tentative, non-unknown) overlay exists.
    pub fn active(&self) -> bool {
        self.cursor
            .map(|c| !c.tentative(self.confirmed_epoch))
            .unwrap_or(false)
            || self
                .cells
                .iter()
                .any(|c| !c.unknown && !c.tentative(self.confirmed_epoch))
    }

    /// Starts a new epoch: future predictions stay in the background until
    /// the server confirms one of them.
    pub fn become_tentative(&mut self) {
        self.prediction_epoch = self.confirmed_epoch.max(self.prediction_epoch) + 1;
    }

    /// Drops every outstanding prediction and starts a fresh epoch.
    pub fn reset(&mut self) {
        self.cells.clear();
        self.cursor = None;
        self.become_tentative();
    }

    fn update_triggers(&mut self, srtt: f64) {
        self.srtt_trigger = if self.srtt_trigger {
            srtt > SRTT_TRIGGER_LOW
        } else {
            srtt > SRTT_TRIGGER_HIGH
        };
        self.flagging = if self.flagging {
            srtt > FLAG_TRIGGER_LOW
        } else {
            srtt > FLAG_TRIGGER_HIGH
        };
    }

    /// The cursor position predictions build on: the latest cursor
    /// prediction if one exists, else the frame's own cursor.
    fn working_cursor(&self, frame: &Framebuffer) -> (usize, usize) {
        match self.cursor {
            Some(c) => (c.row, c.col),
            None => (frame.cursor.row, frame.cursor.col),
        }
    }

    /// The character currently predicted (or displayed) at a position.
    fn cell_at(&self, frame: &Framebuffer, row: usize, col: usize) -> Cell {
        for p in self.cells.iter().rev() {
            if p.row == row && p.col == col {
                return p.replacement;
            }
        }
        *frame.cell(row, col)
    }

    fn put_prediction(&mut self, p: CellPrediction) {
        // Newest wins: drop any older prediction for the same cell.
        self.cells.retain(|c| !(c.row == p.row && c.col == p.col));
        self.cells.push(p);
    }

    /// Feeds one user keystroke made at `now`, to be judged once the echo
    /// ack reaches `expiration_index`. `frame` is the latest server state
    /// known to the client; `srtt` the transport's current estimate.
    ///
    /// Returns true if the keystroke's echo was predicted *and displayed*
    /// immediately (the paper's "instant" outcome).
    pub fn new_user_input(
        &mut self,
        now: Millis,
        srtt: f64,
        keystroke: &[u8],
        frame: &Framebuffer,
        expiration_index: u64,
    ) -> bool {
        self.update_triggers(srtt);
        if self.width != frame.width() || self.height != frame.height() {
            self.width = frame.width();
            self.height = frame.height();
            self.reset();
        }

        // Classify the keystroke.
        match keystroke {
            // Printable (possibly multi-byte UTF-8) text: predict the echo.
            [b, ..] if *b >= 0x20 && *b != 0x7f => {
                let Ok(text) = std::str::from_utf8(keystroke) else {
                    self.become_tentative();
                    self.stats.unpredicted += 1;
                    return false;
                };
                let Some(ch) = text.chars().next() else {
                    self.stats.unpredicted += 1;
                    return false;
                };
                if mosh_terminal::width::char_width(ch) != 1 {
                    // Wide characters complicate wrap prediction; stay out.
                    self.become_tentative();
                    self.stats.unpredicted += 1;
                    return false;
                }
                self.predict_echo(now, ch, frame, expiration_index);
                self.stats.predicted += 1;
                // "Shown" means *this* keystroke's prediction is visible:
                // the engine is engaged and the current epoch is confirmed.
                let shown = self.engaged() && self.prediction_epoch <= self.confirmed_epoch;
                if shown {
                    self.stats.displayed_instantly += 1;
                }
                shown
            }
            // Backspace / DEL: predict the deletion.
            [0x7f] | [0x08] => {
                self.predict_backspace(now, frame, expiration_index);
                self.stats.predicted += 1;
                let shown = self.engaged() && self.prediction_epoch <= self.confirmed_epoch;
                if shown {
                    self.stats.displayed_instantly += 1;
                }
                shown
            }
            // Carriage return: move to column 0 of the next row, but in a
            // new epoch — the command's output is unpredictable.
            [0x0d] => {
                self.become_tentative();
                let (row, _) = self.working_cursor(frame);
                self.cursor = Some(CursorPrediction {
                    row: (row + 1).min(frame.height().saturating_sub(1)),
                    col: 0,
                    tentative_until_epoch: self.prediction_epoch,
                    expiration_index,
                    prediction_time: now,
                });
                self.stats.unpredicted += 1;
                false
            }
            // Up/down arrows, escape sequences, control characters: these
            // "are likely to alter the host's echo state" (paper §3.2).
            _ => {
                self.become_tentative();
                self.stats.unpredicted += 1;
                false
            }
        }
    }

    fn predict_echo(&mut self, now: Millis, ch: char, frame: &Framebuffer, expiration: u64) {
        let (row, col) = self.working_cursor(frame);
        if col + 1 >= frame.width() {
            // Word wrap is the paper's canonical misprediction source
            // (0.9% of keystrokes): predict only tentatively at the margin.
            self.become_tentative();
        }
        if row >= frame.height() || col >= frame.width() {
            self.become_tentative();
            return;
        }

        if !self.predict_overwrite {
            // Insert: displaced text slides right; those cells become
            // "unknown" guesses beyond a short horizon.
            let width = frame.width();
            let mut carried: Vec<Cell> = Vec::new();
            for c in col..width.saturating_sub(1) {
                carried.push(self.cell_at(frame, row, c));
            }
            for (offset, old) in carried.into_iter().enumerate() {
                let target = col + 1 + offset;
                if target >= width {
                    break;
                }
                if old.is_blank() && self.cell_at(frame, row, target).is_blank() {
                    continue; // Shifting blanks over blanks: no prediction.
                }
                self.put_prediction(CellPrediction {
                    row,
                    col: target,
                    replacement: old,
                    unknown: offset >= 2,
                    tentative_until_epoch: self.prediction_epoch,
                    expiration_index: expiration,
                    prediction_time: now,
                });
            }
        }

        let attrs = frame.cell(row, col).attrs;
        self.put_prediction(CellPrediction {
            row,
            col,
            replacement: Cell::narrow(ch, attrs),
            unknown: false,
            tentative_until_epoch: self.prediction_epoch,
            expiration_index: expiration,
            prediction_time: now,
        });
        self.cursor = Some(CursorPrediction {
            row,
            col: (col + 1).min(frame.width() - 1),
            tentative_until_epoch: self.prediction_epoch,
            expiration_index: expiration,
            prediction_time: now,
        });
    }

    fn predict_backspace(&mut self, now: Millis, frame: &Framebuffer, expiration: u64) {
        let (row, col) = self.working_cursor(frame);
        if col == 0 {
            self.become_tentative();
            return;
        }
        let target = col - 1;
        if self.predict_overwrite {
            self.put_prediction(CellPrediction {
                row,
                col: target,
                replacement: Cell::blank(Attrs::default()),
                unknown: false,
                tentative_until_epoch: self.prediction_epoch,
                expiration_index: expiration,
                prediction_time: now,
            });
        } else {
            // Text right of the cursor slides left.
            let width = frame.width();
            for c in target..width {
                let source = if c + 1 < width {
                    self.cell_at(frame, row, c + 1)
                } else {
                    Cell::blank(Attrs::default())
                };
                if source.is_blank() && self.cell_at(frame, row, c).is_blank() {
                    continue;
                }
                self.put_prediction(CellPrediction {
                    row,
                    col: c,
                    replacement: source,
                    unknown: c > target + 1,
                    tentative_until_epoch: self.prediction_epoch,
                    expiration_index: expiration,
                    prediction_time: now,
                });
            }
        }
        self.cursor = Some(CursorPrediction {
            row,
            col: target,
            tentative_until_epoch: self.prediction_epoch,
            expiration_index: expiration,
            prediction_time: now,
        });
    }

    /// Processes a newly arrived server frame (with its echo ack): culls
    /// confirmed and contradicted predictions, updates confidence.
    pub fn report_frame(&mut self, now: Millis, frame: &Framebuffer, echo_ack: u64, srtt: f64) {
        self.update_triggers(srtt);
        if self.width != frame.width() || self.height != frame.height() {
            self.width = frame.width();
            self.height = frame.height();
            self.reset();
            return;
        }

        let mut must_reset = false;
        // Candidate epoch confirmation from correct cells — adopted only if
        // the cursor does not contradict it. A coincidental cell match in a
        // full-screen app (a redrawn character happening to equal the
        // predicted echo) must not unleash the epoch; the cursor position
        // corroborates a real echo.
        let mut candidate_epoch = self.confirmed_epoch;

        let confirmed_epoch = self.confirmed_epoch;
        let mut confirmed = 0u64;
        let mut mispredicted = 0u64;
        let mut glitch_hits = 0u32;
        let mut quick_confirms = 0u32;
        self.cells.retain(|p| match p.validity(frame, echo_ack) {
            Validity::Correct => {
                if p.tentative_until_epoch > candidate_epoch {
                    candidate_epoch = p.tentative_until_epoch;
                }
                confirmed += 1;
                if now.saturating_sub(p.prediction_time) < GLITCH_THRESHOLD {
                    quick_confirms += 1;
                }
                false // Server now shows it; drop the overlay.
            }
            Validity::CorrectNoCredit => false,
            Validity::IncorrectOrExpired => {
                // Tentative mispredictions die silently (they were never
                // shown); displayed ones force a repair.
                if p.tentative_until_epoch <= confirmed_epoch && !p.unknown {
                    mispredicted += 1;
                    must_reset = true;
                }
                false
            }
            Validity::Pending => {
                if now.saturating_sub(p.prediction_time) > GLITCH_THRESHOLD {
                    glitch_hits += 1;
                }
                true
            }
        });
        self.stats.confirmed += confirmed;
        self.stats.mispredicted += mispredicted;

        let mut cursor_contradicts = false;
        if let Some(c) = self.cursor {
            match c.validity(frame, echo_ack) {
                Validity::Correct | Validity::CorrectNoCredit => {
                    if c.tentative_until_epoch > candidate_epoch {
                        candidate_epoch = c.tentative_until_epoch;
                    }
                    self.cursor = None;
                }
                Validity::IncorrectOrExpired => {
                    if !c.tentative(confirmed_epoch) {
                        self.stats.mispredicted += 1;
                        must_reset = true;
                    } else {
                        // A wrong tentative cursor vetoes the confirmation:
                        // whatever matched was coincidence, not an echo.
                        cursor_contradicts = true;
                    }
                    self.cursor = None;
                }
                Validity::Pending => {}
            }
        }
        if !cursor_contradicts && candidate_epoch > self.confirmed_epoch {
            self.confirmed_epoch = candidate_epoch;
        }

        // Confidence bookkeeping: long-pending predictions engage the
        // glitch trigger; quick confirmations repair it.
        if glitch_hits > 0 {
            self.glitch_trigger = GLITCH_REPAIR_COUNT;
        } else {
            self.glitch_trigger = self.glitch_trigger.saturating_sub(quick_confirms);
        }

        if must_reset {
            self.reset();
        }
    }

    /// Overlays the (displayable) predictions onto a frame copy for
    /// rendering. Unconfirmed predictions are underlined while flagging is
    /// engaged, per the paper: "we underline unconfirmed predictions so
    /// the user doesn't become misled."
    pub fn apply(&self, frame: &mut Framebuffer) {
        if !self.engaged() {
            return;
        }
        if frame.width() != self.width || frame.height() != self.height {
            return;
        }
        for p in &self.cells {
            if p.unknown || p.tentative(self.confirmed_epoch) {
                continue;
            }
            let mut cell = p.replacement;
            if self.flagging {
                cell.attrs.underline = true;
            }
            *frame.cell_mut(p.row, p.col) = cell;
        }
        if let Some(c) = self.cursor {
            if !c.tentative(self.confirmed_epoch) {
                frame.cursor.row = c.row.min(frame.height() - 1);
                frame.cursor.col = c.col.min(frame.width() - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosh_terminal::Terminal;

    const FAST: f64 = 5.0;
    const SLOW: f64 = 200.0;

    fn frame(text: &[u8]) -> Framebuffer {
        let mut t = Terminal::new(40, 8);
        t.write(text);
        t.frame().clone()
    }

    /// An engine warmed up on a slow link with one confirmed round trip,
    /// so predictions display immediately.
    fn confident_engine(fb: &Framebuffer) -> PredictionEngine {
        let mut e = PredictionEngine::new(DisplayPreference::Adaptive);
        // First keystroke: epoch still tentative.
        e.new_user_input(0, SLOW, b"x", fb, 1);
        // Server confirms it.
        let mut confirmed = fb.clone();
        let (r, c) = (fb.cursor.row, fb.cursor.col);
        *confirmed.cell_mut(r, c) = Cell::narrow('x', Attrs::default());
        confirmed.cursor.col = c + 1;
        e.report_frame(400, &confirmed, 1, SLOW);
        assert_eq!(e.stats().confirmed, 1);
        e
    }

    #[test]
    fn first_epoch_is_tentative() {
        let fb = frame(b"$ ");
        let mut e = PredictionEngine::new(DisplayPreference::Adaptive);
        let shown = e.new_user_input(0, SLOW, b"l", &fb, 1);
        assert!(!shown, "first epoch must stay in the background");
        let mut display = fb.clone();
        e.apply(&mut display);
        assert_eq!(display, fb, "tentative predictions are invisible");
    }

    #[test]
    fn confirmation_reveals_the_epoch() {
        let fb = frame(b"$ x");
        let e = confident_engine(&frame(b"$ "));
        // The engine is confident now; a new keystroke displays instantly.
        let mut e = e;
        let shown = e.new_user_input(500, SLOW, b"l", &fb, 2);
        assert!(shown);
        let mut display = fb.clone();
        e.apply(&mut display);
        assert_eq!(display.cell(0, 3).ch, 'l');
        assert_eq!(display.cursor.col, 4);
    }

    #[test]
    fn fast_links_do_not_engage_predictions() {
        let fb = frame(b"$ ");
        let mut e = PredictionEngine::new(DisplayPreference::Adaptive);
        let shown = e.new_user_input(0, FAST, b"l", &fb, 1);
        assert!(!shown);
        assert!(!e.engaged());
    }

    #[test]
    fn always_preference_displays_from_first_keystroke() {
        let fb = frame(b"$ ");
        let mut e = PredictionEngine::new(DisplayPreference::Always);
        // Epochs still apply: the first epoch is tentative until confirmed.
        let shown = e.new_user_input(0, FAST, b"l", &fb, 1);
        assert!(!shown);
        // After confirmation, instant.
        let mut confirmed = fb.clone();
        *confirmed.cell_mut(0, 2) = Cell::narrow('l', Attrs::default());
        confirmed.cursor.col = 3;
        e.report_frame(10, &confirmed, 1, FAST);
        let shown = e.new_user_input(20, FAST, b"s", &confirmed, 2);
        assert!(shown);
    }

    #[test]
    fn never_preference_never_displays() {
        let fb = frame(b"$ ");
        let mut e = PredictionEngine::new(DisplayPreference::Never);
        e.new_user_input(0, SLOW, b"l", &fb, 1);
        let mut display = fb.clone();
        e.apply(&mut display);
        assert_eq!(display, fb);
    }

    #[test]
    fn typing_a_word_overlays_every_character() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        let fb = frame(b"$ x"); // server state after the confirmed 'x'
        for (i, key) in [b"e", b"c", b"h", b"o"].iter().enumerate() {
            e.new_user_input(500 + i as u64, SLOW, *key, &fb, 2 + i as u64);
        }
        let mut display = fb.clone();
        e.apply(&mut display);
        assert_eq!(display.row_text(0), "$ xecho");
        assert_eq!(display.cursor.col, 7);
    }

    #[test]
    fn misprediction_is_repaired() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        let fb = frame(b"$ x");
        e.new_user_input(500, SLOW, b"q", &fb, 2);
        let mut display = fb.clone();
        e.apply(&mut display);
        assert_eq!(display.cell(0, 3).ch, 'q');

        // Server disagrees: the app swallowed the keystroke (e.g. passwd).
        let server = frame(b"$ x");
        e.report_frame(900, &server, 2, SLOW);
        // Both the echoed cell and the cursor position were wrong.
        assert!(e.stats().mispredicted >= 1);
        let mut display = server.clone();
        e.apply(&mut display);
        assert_eq!(display, server, "wrong overlay must be removed");
    }

    #[test]
    fn control_characters_end_the_epoch() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        let fb = frame(b"$ x");
        assert!(e.new_user_input(500, SLOW, b"a", &fb, 2));
        // Up-arrow: epoch increments; the next prediction hides.
        e.new_user_input(510, SLOW, b"\x1b[A", &fb, 3);
        let shown = e.new_user_input(520, SLOW, b"b", &fb, 4);
        assert!(!shown, "prediction after navigation must be tentative");
    }

    #[test]
    fn backspace_is_predicted() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        let fb = frame(b"$ xy"); // cursor at col 4
        let shown = e.new_user_input(500, SLOW, b"\x7f", &fb, 2);
        assert!(shown);
        let mut display = fb.clone();
        e.apply(&mut display);
        assert_eq!(display.row_text(0), "$ x");
        assert_eq!(display.cursor.col, 3);
    }

    #[test]
    fn word_wrap_predictions_are_tentative() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        // Fill the row to one short of the margin.
        let mut t = Terminal::new(40, 8);
        t.write(&[b'a'; 39]);
        let fb = t.frame().clone();
        let shown = e.new_user_input(500, SLOW, b"z", &fb, 2);
        assert!(!shown, "margin predictions must not display");
    }

    #[test]
    fn glitch_trigger_engages_on_slow_confirmation() {
        let fb = frame(b"$ ");
        let mut e = PredictionEngine::new(DisplayPreference::Adaptive);
        // Low SRTT: not engaged via srtt_trigger.
        e.new_user_input(0, 25.0, b"a", &fb, 1);
        assert!(!e.engaged());
        // 300 ms later the prediction is still pending: glitch.
        e.report_frame(300, &fb, 0, 25.0);
        assert!(e.engaged(), "glitch trigger must engage display");
    }

    #[test]
    fn underline_flags_on_high_latency() {
        let base = frame(b"$ ");
        let mut e = PredictionEngine::new(DisplayPreference::Adaptive);
        e.new_user_input(0, 200.0, b"x", &base, 1);
        let mut confirmed = frame(b"$ x");
        confirmed.cursor.col = 3;
        e.report_frame(400, &confirmed, 1, 200.0);
        e.new_user_input(500, 200.0, b"y", &confirmed, 2);
        let mut display = confirmed.clone();
        e.apply(&mut display);
        assert!(
            display.cell(0, 3).attrs.underline,
            "unconfirmed predictions underline on slow links"
        );
    }

    #[test]
    fn no_underline_on_moderate_latency() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base); // srtt 200 → flagging on
                                             // Drop to 60 ms: flagging hysteresis keeps it on until < 50.
        e.report_frame(600, &frame(b"$ x"), 1, 40.0);
        let fb = frame(b"$ x");
        e.new_user_input(700, 40.0, b"y", &fb, 2);
        let mut display = fb.clone();
        e.apply(&mut display);
        // srtt_trigger hysteresis: still engaged (40 > 20) from before.
        assert_eq!(display.cell(0, 3).ch, 'y');
        assert!(!display.cell(0, 3).attrs.underline);
    }

    #[test]
    fn resize_resets_predictions() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        let fb = frame(b"$ x");
        e.new_user_input(500, SLOW, b"y", &fb, 2);
        let mut small = Terminal::new(20, 4);
        small.write(b"$ x");
        e.report_frame(600, small.frame(), 2, SLOW);
        let mut display = small.frame().clone();
        e.apply(&mut display);
        assert_eq!(&display, small.frame());
    }

    #[test]
    fn insert_shifts_existing_text() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        // Screen shows "$ xab" with the cursor back at the 'a'.
        let mut t = Terminal::new(40, 8);
        t.write(b"$ xab\x1b[1;4H");
        let fb = t.frame().clone();
        e.new_user_input(500, SLOW, b"Z", &fb, 2);
        let mut display = fb.clone();
        e.apply(&mut display);
        // 'Z' lands at the cursor; 'a' visibly slides right ("unknown"
        // cells beyond the horizon are not displayed).
        assert_eq!(display.cell(0, 3).ch, 'Z');
        assert_eq!(display.cell(0, 4).ch, 'a');
    }

    #[test]
    fn stats_track_prediction_rate() {
        let base = frame(b"$ ");
        let mut e = confident_engine(&base);
        let fb = frame(b"$ x");
        e.new_user_input(500, SLOW, b"a", &fb, 2);
        e.new_user_input(510, SLOW, b"\x1b[B", &fb, 3);
        e.new_user_input(520, SLOW, b"\r", &fb, 4);
        let s = e.stats();
        assert_eq!(s.predicted, 2); // 'x' (warmup) + 'a'
        assert_eq!(s.unpredicted, 2);
        assert_eq!(s.displayed_instantly, 1);
    }
}
