//! Speculative local echo — the Mosh paper's §3.2.
//!
//! The client guesses the effect of each keystroke on the screen and, when
//! confident, displays the guess immediately rather than waiting a round
//! trip. Predictions are grouped into **epochs** ("either all of the
//! predictions in an epoch will be correct, or none will"): an epoch
//! begins tentatively, making predictions only in the background, and is
//! revealed the moment the server confirms any one of its predictions.
//! Keystrokes that tend to change the host's echo behaviour — up/down
//! arrows, control characters, carriage returns — end the current epoch.
//!
//! Verification uses the server-side **echo ack** (§3.2): the terminal
//! state that arrives from the server carries the index of the newest
//! keystroke whose effects must already be on the screen, so network
//! jitter can never produce false-negative flicker.
//!
//! [`PredictionEngine`] is a pure state machine: feed it user keystrokes
//! and arriving server frames, then let it [`PredictionEngine::apply`]
//! its overlays onto a copy of the frame for display.

pub mod engine;
pub mod overlay;

pub use engine::{DisplayPreference, PredictionEngine, PredictionStats};
pub use overlay::Validity;

/// Virtual time in milliseconds.
pub type Millis = u64;
