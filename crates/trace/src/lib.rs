//! Keystroke traces, replay, and statistics: the paper's evaluation
//! apparatus (§4).
//!
//! * [`synth`] — six synthetic users, 9,986 keystrokes, matching the
//!   paper's workload mix (shells, editors, mail, chat, browsing).
//! * [`workload`] — the multi-application session the traces run in.
//! * [`replay`] — drives full Mosh and SSH sessions over the network
//!   emulator and measures per-keystroke response latency.
//! * [`stats`] — medians, means, σ, and CDFs as the paper reports them.

pub mod replay;
pub mod stats;
pub mod synth;
pub mod workload;

pub use replay::{
    replay_mosh, replay_mosh_many, replay_ssh, replay_ssh_many, ReplayConfig, ReplayOutcome,
};
pub use stats::Latencies;
pub use synth::{six_users, small_trace, KeyKind, UserTrace};
pub use workload::{AppKind, WorkloadApp, SWITCH_BYTE};
