//! The workload application: a session that switches between app classes.
//!
//! Real sessions run one program after another inside the same terminal.
//! [`WorkloadApp`] hosts a sequence of applications and advances to the
//! next when it sees the switch byte (Ctrl-], which none of the modelled
//! programs use), so a whole multi-program trace replays through a single
//! Mosh or SSH session.

use mosh_core::apps::{Application, Editor, LineShell, MailReader, Pager, TimedWrite};
use mosh_core::Millis;
use mosh_ssp::wire::{put_bytes, put_varint, Reader};

/// The control byte that advances to the next application in the workload.
pub const SWITCH_BYTE: u8 = 0x1d;

/// Which application class a segment runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Canonical-mode shell (bash/zsh class).
    Shell,
    /// Raw-mode full-screen editor (emacs/vim class).
    Editor,
    /// Full-screen pager (`less`, text-mode browsing).
    Pager,
    /// Mail index (alpine/mutt class).
    Mail,
}

impl AppKind {
    /// Instantiates a fresh application of this class.
    pub fn build(self) -> Box<dyn Application> {
        match self {
            AppKind::Shell => Box::new(LineShell::new()),
            AppKind::Editor => Box::new(Editor::new()),
            AppKind::Pager => Box::new(Pager::new(400)),
            AppKind::Mail => Box::new(MailReader::new(18)),
        }
    }
}

/// A sequence of applications, switched by [`SWITCH_BYTE`].
pub struct WorkloadApp {
    kinds: Vec<AppKind>,
    active: usize,
    current: Box<dyn Application>,
}

impl WorkloadApp {
    /// Builds a workload running the given application classes in order.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    pub fn new(kinds: Vec<AppKind>) -> Self {
        assert!(!kinds.is_empty(), "workload needs at least one app");
        let current = kinds[0].build();
        WorkloadApp {
            kinds,
            active: 0,
            current,
        }
    }
}

impl Application for WorkloadApp {
    fn start(&mut self, now: Millis) -> Vec<TimedWrite> {
        self.current.start(now)
    }

    fn on_input(&mut self, now: Millis, bytes: &[u8]) -> Vec<TimedWrite> {
        let mut out = Vec::new();
        for &b in bytes {
            if b == SWITCH_BYTE {
                if self.active + 1 < self.kinds.len() {
                    self.active += 1;
                    self.current = self.kinds[self.active].build();
                    // Clean handoff: leave any alternate screen, clear.
                    out.push(TimedWrite {
                        at: now + 1,
                        bytes: b"\x1b[?1049l\x1b[0m\x1b[2J\x1b[H".to_vec(),
                    });
                    out.extend(self.current.start(now + 2));
                }
            } else {
                out.extend(self.current.on_input(now, &[b]));
            }
        }
        out
    }

    fn poll(&mut self, now: Millis) -> Vec<TimedWrite> {
        self.current.poll(now)
    }

    fn next_wakeup(&self, now: Millis) -> Option<Millis> {
        self.current.next_wakeup(now)
    }

    fn on_resize(&mut self, now: Millis, width: usize, height: usize) -> Vec<TimedWrite> {
        self.current.on_resize(now, width, height)
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, self.active as u64);
        put_bytes(&mut out, &self.current.save_state());
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        // Parse and validate everything before touching self: a rejected
        // snapshot leaves the workload exactly as it was.
        let mut r = Reader::new(bytes);
        let Ok(active) = r.varint() else { return false };
        let Ok(inner) = r.bytes() else { return false };
        let active = active as usize;
        if r.remaining() != 0 || active >= self.kinds.len() {
            return false;
        }
        // The inner app's own kind tag rejects a snapshot whose segment
        // index names a different app class in this workload.
        let mut current = self.kinds[active].build();
        if !current.restore_state(inner) {
            return false;
        }
        self.active = active;
        self.current = current;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_byte_advances_apps() {
        let mut w = WorkloadApp::new(vec![AppKind::Shell, AppKind::Pager]);
        let start = w.start(0);
        assert!(!start.is_empty());
        // Shell echoes 'x'.
        assert!(!w.on_input(10, b"x").is_empty());
        // Switch to the pager: handoff output includes a clear + redraw.
        let out = w.on_input(20, &[SWITCH_BYTE]);
        let bytes: Vec<u8> = out.iter().flat_map(|t| t.bytes.clone()).collect();
        assert!(String::from_utf8_lossy(&bytes).contains("\x1b[2J"));
        // Pager responds to space.
        assert!(!w.on_input(30, b" ").is_empty());
    }

    #[test]
    fn switch_past_the_end_is_harmless() {
        let mut w = WorkloadApp::new(vec![AppKind::Shell]);
        w.start(0);
        assert!(w.on_input(5, &[SWITCH_BYTE]).is_empty());
        assert!(!w.on_input(10, b"a").is_empty());
    }

    #[test]
    fn workload_state_round_trips_mid_segment() {
        let mut w = WorkloadApp::new(vec![AppKind::Shell, AppKind::Pager, AppKind::Mail]);
        w.start(0);
        w.on_input(10, b"ab");
        w.on_input(20, &[SWITCH_BYTE]); // now in the pager
        w.on_input(30, b"  "); // paged down twice
        let saved = w.save_state();

        let mut twin = WorkloadApp::new(vec![AppKind::Shell, AppKind::Pager, AppKind::Mail]);
        twin.start(0);
        assert!(twin.restore_state(&saved), "snapshot restores");
        // Same segment, same inner state: identical next output.
        let a: Vec<_> = w.on_input(40, b" ").into_iter().map(|t| t.bytes).collect();
        let b: Vec<_> = twin
            .on_input(40, b" ")
            .into_iter()
            .map(|t| t.bytes)
            .collect();
        assert_eq!(a, b);

        // A workload with a different app plan rejects the snapshot
        // whole (the inner kind tag catches the mismatch) and keeps
        // serving its own state.
        let mut other = WorkloadApp::new(vec![AppKind::Shell, AppKind::Editor]);
        other.start(0);
        other.on_input(5, b"z");
        assert!(!other.restore_state(&saved));
        assert!(!other.on_input(6, b"z").is_empty(), "still the shell");
        // Truncations are rejected too, never half-applied.
        for cut in 0..saved.len() {
            assert!(!twin.restore_state(&saved[..cut]), "cut at {cut}");
        }
    }

    #[test]
    fn multi_byte_input_crossing_switch() {
        let mut w = WorkloadApp::new(vec![AppKind::Shell, AppKind::Shell]);
        w.start(0);
        // 'a' to app 0, switch, 'b' to app 1 — all in one input chunk.
        let out = w.on_input(10, &[b'a', SWITCH_BYTE, b'b']);
        assert!(out.len() >= 3);
    }
}
