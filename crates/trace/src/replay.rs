//! The replay engine: the paper's evaluation method (§4).
//!
//! "A client-side process played the user portion of the traces, and a
//! server-side process waited for the expected user input and then replied
//! (in time) with the prerecorded server output." Our applications are
//! deterministic, so running them live *is* replying with the prerecorded
//! output — byte-for-byte and with the same think-time.
//!
//! For every keystroke we record the user-interface response latency:
//!
//! * **Mosh** — zero when the prediction engine displayed the keystroke's
//!   effect speculatively at input time; otherwise the arrival time of the
//!   first server frame whose echo ack covers the keystroke (the screen
//!   then provably reflects it). The echo ack lags real screen content by
//!   up to 50 ms, so this measure is *conservative against Mosh*.
//! * **SSH** — the time the client has rendered every output byte the
//!   application produced in response to the keystroke (known exactly
//!   from a deterministic dry run).
//!
//! Keystrokes that produce no output at all (and were not predicted) are
//! excluded from both systems alike: no response ever becomes visible.
//!
//! Sessions are driven by the multi-session [`ServerHub`]: every user in
//! a replay batch is one hub session in its own discrete-event world, all
//! demultiplexed through a single timer wheel and one event loop — the
//! six-user workloads that used to be six dedicated loops are now one
//! hub. Per-session stepping is event-driven (virtual time jumps straight
//! to the next wakeup or delivery), and the resolution of keystrokes
//! against server acknowledgments rides on the hub's typed events
//! ([`SessionEvent::FrameAdvanced`] for Mosh,
//! [`SessionEvent::BytesRendered`] for SSH), so the measured schedule is
//! identical to the historical 1 ms pump and to dedicated per-user loops
//! alike (see `tests/schedule_identity.rs` and `tests/hub_identity.rs`).

use crate::stats::Latencies;
use crate::synth::{KeyKind, TraceKey, UserTrace};
use crate::workload::{WorkloadApp, SWITCH_BYTE};
use mosh_core::session::{Endpoint, Party, SessionEvent};
use mosh_core::{HubSession, Millis, MoshClient, MoshServer, SessionId, ShardedHub};
use mosh_crypto::Base64Key;
use mosh_net::{Addr, LinkConfig, Network, Side, SimChannel, SimPoller};
use mosh_prediction::DisplayPreference;
use mosh_ssh::{SshClient, SshServer};
use mosh_tcp::TcpEndpoint;
use std::collections::VecDeque;

/// Configuration of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Client→server link.
    pub up: LinkConfig,
    /// Server→client link.
    pub down: LinkConfig,
    /// Network RNG seed.
    pub seed: u64,
    /// Prediction display preference (Mosh only).
    pub preference: DisplayPreference,
    /// Collection-interval override in ms (Figure 3's sweep).
    pub mindelay: Option<Millis>,
    /// Run a concurrent bulk TCP download through the same downlink
    /// bottleneck (the LTE experiment).
    pub bulk_download: bool,
    /// Worker threads for batch replays: users are spread over this many
    /// hub shards, each replaying its share in parallel. Per-user results
    /// are **identical at every thread count** (each user is a private
    /// world; the sharded hub is byte-identical to the single-threaded
    /// one), so this is purely a wall-clock knob. 0 and 1 both mean
    /// single-threaded.
    pub threads: usize,
}

impl ReplayConfig {
    /// A replay over the given pair of links with defaults otherwise.
    pub fn over(up: LinkConfig, down: LinkConfig) -> Self {
        ReplayConfig {
            up,
            down,
            seed: 42,
            preference: DisplayPreference::Adaptive,
            mindelay: None,
            bulk_download: false,
            threads: 1,
        }
    }

    /// The shard count a config asks for (clamped to at least one, and
    /// never more than one shard per user).
    fn shards_for(&self, users: usize) -> usize {
        self.threads.max(1).min(users.max(1))
    }
}

/// The outcome of replaying one trace through one system.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-keystroke response latencies (ms).
    pub latencies: Latencies,
    /// Keystrokes whose effect displayed instantly (Mosh predictions).
    pub instant: u64,
    /// Keystrokes measured.
    pub measured: u64,
    /// Mispredictions repaired (Mosh).
    pub mispredicted: u64,
    /// Server-side `(write arrival, shipped)` pairs (Figure 3).
    pub write_delays: Vec<(Millis, Millis)>,
    /// SSP sender stats (ablations); zeroed for SSH.
    pub sender_stats: mosh_ssp::sender::SenderStats,
}

/// A flattened trace: absolute keystroke times plus the switch markers.
struct FlatTrace {
    keys: Vec<(Millis, Vec<u8>, KeyKind, bool)>, // (at, bytes, kind, measured)
    apps: Vec<crate::workload::AppKind>,
}

fn flatten(trace: &UserTrace) -> FlatTrace {
    let mut keys = Vec::new();
    let mut now: Millis = 1500; // Let the session settle first.
    for (i, seg) in trace.segments.iter().enumerate() {
        if i > 0 {
            now += 1500;
            keys.push((now, vec![SWITCH_BYTE], KeyKind::Control, false));
        }
        for TraceKey {
            gap_ms,
            bytes,
            kind,
        } in &seg.keys
        {
            now += gap_ms;
            keys.push((now, bytes.clone(), *kind, true));
        }
    }
    FlatTrace {
        keys,
        apps: trace.segments.iter().map(|s| s.app).collect(),
    }
}

/// Dry-runs the workload to learn each keystroke's cumulative response
/// byte target (and which keystrokes produce any output at all).
fn dry_run(flat: &FlatTrace) -> Vec<u64> {
    let mut app = WorkloadApp::new(flat.apps.clone());
    use mosh_core::apps::Application;
    let mut cumulative: u64 = app.start(0).iter().map(|w| w.bytes.len() as u64).sum();
    let mut targets = Vec::with_capacity(flat.keys.len());
    for (at, bytes, _, _) in &flat.keys {
        let writes = app.on_input(*at, bytes);
        let produced: u64 = writes.iter().map(|w| w.bytes.len() as u64).sum();
        cumulative += produced;
        // Target 0 marks "no visible response".
        targets.push(if produced == 0 { 0 } else { cumulative });
    }
    targets
}

/// Replays a trace through a full Mosh session over the emulated network.
pub fn replay_mosh(trace: &UserTrace, cfg: &ReplayConfig) -> ReplayOutcome {
    replay_mosh_many(std::slice::from_ref(trace), cfg)
        .pop()
        .expect("one trace in, one outcome out")
}

/// Replays a trace through the SSH baseline over the emulated network.
pub fn replay_ssh(trace: &UserTrace, cfg: &ReplayConfig) -> ReplayOutcome {
    replay_ssh_many(std::slice::from_ref(trace), cfg)
        .pop()
        .expect("one trace in, one outcome out")
}

/// Per-user replay state shared by the Mosh and SSH engines: the
/// flattened script, the per-keystroke response-byte targets, and the
/// measurement accumulators.
struct UserRun {
    sid: SessionId,
    keys: Vec<(Millis, Vec<u8>, KeyKind, bool)>,
    targets: Vec<u64>,
    next_key: usize,
    /// Virtual time this user's world is driven to in the current round.
    round_target: Millis,
    end: Millis,
    done: bool,
    latencies: Latencies,
    instant: u64,
    measured: u64,
}

impl UserRun {
    fn new(sid: SessionId, flat: FlatTrace, targets: Vec<u64>, settle: Millis) -> Self {
        let end = flat.keys.last().map(|k| k.0).unwrap_or(0) + settle;
        UserRun {
            sid,
            keys: flat.keys,
            targets,
            next_key: 0,
            round_target: 0,
            end,
            done: false,
            latencies: Latencies::new(),
            instant: 0,
            measured: 0,
        }
    }

    /// The next instant this user needs control back: its next keystroke,
    /// or the post-trace settle deadline.
    fn next_target(&self) -> Millis {
        self.keys
            .get(self.next_key)
            .map(|k| k.0)
            .unwrap_or(self.end)
    }
}

/// Replays a batch of traces through full Mosh sessions — one
/// [`ServerHub`] driving every user concurrently, each in its own
/// emulated network world (same links, same seed: users are statistically
/// identical runs, exactly as the per-user processes of the paper's
/// evaluation were). Outcomes come back in trace order and are identical
/// to running each trace through a dedicated loop.
pub fn replay_mosh_many(traces: &[UserTrace], cfg: &ReplayConfig) -> Vec<ReplayOutcome> {
    let key = Base64Key::from_bytes([0x4d; 16]);
    let c_addr = Addr::new(1, 1000);
    let s_addr = Addr::new(2, 60001);

    let mut hub = ShardedHub::with_shards(cfg.shards_for(traces.len()), SimPoller::new);
    let mut users: Vec<UserRun> = Vec::new();
    let mut endpoints: Vec<(MoshClient, MoshServer, Option<BulkFlow>)> = Vec::new();
    // Outstanding unresolved keystrokes per user: (index, typed at, counted).
    let mut pendings: Vec<VecDeque<(u64, Millis, bool)>> = Vec::new();
    for trace in traces {
        let flat = flatten(trace);
        let targets = dry_run(&flat);
        let mut net = Network::new(cfg.up.clone(), cfg.down.clone(), cfg.seed);
        net.register(c_addr, Side::Client);
        net.register(s_addr, Side::Server);
        let client = MoshClient::new(key.clone(), s_addr, 80, 24, cfg.preference);
        let mut server =
            MoshServer::new(key.clone(), Box::new(WorkloadApp::new(flat.apps.clone())));
        if let Some(md) = cfg.mindelay {
            server.set_mindelay(md);
        }
        let bulk = cfg.bulk_download.then(|| BulkFlow::new(&mut net));
        let sid = hub.add_session(SimChannel::new(net));
        users.push(UserRun::new(sid, flat, targets, 20_000));
        endpoints.push((client, server, bulk));
        pendings.push(VecDeque::new());
    }

    loop {
        let events = pump_live_users(&mut hub, &mut users, &mut endpoints, |eps| {
            mosh_parties(eps, c_addr, s_addr)
        });
        if events.is_none() {
            break;
        }
        // Resolve keystrokes against the frames that arrived: the first
        // frame event whose echo ack covers a keystroke fixes its latency.
        for (sid, ev) in events.expect("checked above") {
            let u = &mut users[sid.0];
            if let SessionEvent::FrameAdvanced { at, echo_ack, .. } = ev {
                while let Some(&(idx, typed_at, countable)) = pendings[sid.0].front() {
                    if echo_ack >= idx {
                        if countable {
                            u.measured += 1;
                            u.latencies.push((at - typed_at) as f64);
                        }
                        pendings[sid.0].pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
        // Inject every keystroke due now; the next pump ticks it out.
        for (u, (client, _, _)) in users.iter_mut().zip(endpoints.iter_mut()) {
            if u.done {
                continue;
            }
            if u.next_key >= u.keys.len() {
                u.done = true;
                continue;
            }
            let target = u.round_target;
            while u.next_key < u.keys.len() && u.keys[u.next_key].0 <= target {
                let (_, bytes, _, count_it) = &u.keys[u.next_key];
                let shown = client.keystroke(target, bytes);
                let idx = client.input_end_index();
                let countable = *count_it && u.targets[u.next_key] != 0;
                if shown && countable {
                    u.instant += 1;
                    u.measured += 1;
                    u.latencies.push(0.0);
                } else {
                    pendings[u.sid.0].push_back((idx, target, countable));
                }
                u.next_key += 1;
            }
        }
    }

    users
        .into_iter()
        .zip(endpoints)
        .map(|(u, (client, server, _))| ReplayOutcome {
            latencies: u.latencies,
            instant: u.instant,
            measured: u.measured,
            mispredicted: client.prediction_stats().mispredicted,
            write_delays: server.write_delays().to_vec(),
            sender_stats: *server.sender_stats(),
        })
        .collect()
}

/// Replays a batch of traces through the SSH baseline — one [`ServerHub`]
/// driving every user concurrently (see [`replay_mosh_many`]).
pub fn replay_ssh_many(traces: &[UserTrace], cfg: &ReplayConfig) -> Vec<ReplayOutcome> {
    let c_addr = Addr::new(1, 5001);
    let s_addr = Addr::new(2, 22);

    let mut hub = ShardedHub::with_shards(cfg.shards_for(traces.len()), SimPoller::new);
    let mut users: Vec<UserRun> = Vec::new();
    let mut endpoints: Vec<(SshClient, SshServer, Option<BulkFlow>)> = Vec::new();
    // Outstanding keystrokes per user: (response byte target, typed at).
    let mut pendings: Vec<VecDeque<(u64, Millis)>> = Vec::new();
    for trace in traces {
        let flat = flatten(trace);
        let targets = dry_run(&flat);
        let mut net = Network::new(cfg.up.clone(), cfg.down.clone(), cfg.seed);
        net.register(c_addr, Side::Client);
        net.register(s_addr, Side::Server);
        let client = SshClient::new(c_addr, s_addr, 80, 24);
        let server = SshServer::new(
            s_addr,
            c_addr,
            Box::new(WorkloadApp::new(flat.apps.clone())),
        );
        let bulk = cfg.bulk_download.then(|| BulkFlow::new(&mut net));
        let sid = hub.add_session(SimChannel::new(net));
        users.push(UserRun::new(sid, flat, targets, 130_000));
        endpoints.push((client, server, bulk));
        pendings.push(VecDeque::new());
    }

    loop {
        let events = pump_live_users(&mut hub, &mut users, &mut endpoints, |eps| {
            ssh_parties(eps, c_addr, s_addr)
        });
        if events.is_none() {
            break;
        }
        // A keystroke's response is visible once the client has rendered
        // every byte the application produced for it (octet stream: all
        // output arrives in full and in order).
        for (sid, ev) in events.expect("checked above") {
            let u = &mut users[sid.0];
            if let SessionEvent::BytesRendered { at, total } = ev {
                while let Some(&(byte_target, typed_at)) = pendings[sid.0].front() {
                    if total >= byte_target {
                        u.measured += 1;
                        u.latencies.push((at - typed_at) as f64);
                        pendings[sid.0].pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
        for (u, (client, _, _)) in users.iter_mut().zip(endpoints.iter_mut()) {
            if u.done {
                continue;
            }
            if u.next_key >= u.keys.len() {
                u.done = true;
                continue;
            }
            let target = u.round_target;
            while u.next_key < u.keys.len() && u.keys[u.next_key].0 <= target {
                let (_, bytes, _, count_it) = &u.keys[u.next_key];
                client.keystroke(target, bytes);
                if *count_it && u.targets[u.next_key] != 0 {
                    pendings[u.sid.0].push_back((u.targets[u.next_key], target));
                }
                u.next_key += 1;
            }
        }
    }

    users
        .into_iter()
        .zip(endpoints)
        .map(|(u, _)| ReplayOutcome {
            latencies: u.latencies,
            instant: 0,
            measured: u.measured,
            mispredicted: 0,
            write_delays: Vec::new(),
            sender_stats: mosh_ssp::sender::SenderStats::default(),
        })
        .collect()
}

/// One hub round: every not-yet-finished user is leased to the hub and
/// driven to its own next target (its next keystroke instant, or its
/// settle deadline) — each user on its owning shard's worker thread.
/// Returns `None` once every user has finished — otherwise the tagged
/// events of the round.
fn pump_live_users<E>(
    hub: &mut ShardedHub<SimPoller>,
    users: &mut [UserRun],
    endpoints: &mut [E],
    mut parties_of: impl FnMut(&mut E) -> Vec<Party<'_>>,
) -> Option<Vec<(SessionId, SessionEvent)>> {
    for u in users.iter_mut() {
        if !u.done {
            u.round_target = u.next_target();
        }
    }
    let mut leases: Vec<(SessionId, Millis, Vec<Party<'_>>)> = users
        .iter()
        .zip(endpoints.iter_mut())
        .filter(|(u, _)| !u.done)
        .map(|(u, eps)| (u.sid, u.round_target, parties_of(eps)))
        .collect();
    if leases.is_empty() {
        return None;
    }
    let mut sessions: Vec<HubSession<'_, '_>> = leases
        .iter_mut()
        .map(|(sid, target, parties)| HubSession::new(*sid, parties, *target))
        .collect();
    Some(hub.pump(&mut sessions))
}

/// A Mosh user's lease. Party order matters for determinism: it fixes the
/// order same-instant datagrams enter the emulator, exactly as the
/// historical loop ticked them.
fn mosh_parties(
    eps: &mut (MoshClient, MoshServer, Option<BulkFlow>),
    c_addr: Addr,
    s_addr: Addr,
) -> Vec<Party<'_>> {
    let (client, server, bulk) = eps;
    let mut parties = vec![Party::new(c_addr, client), Party::new(s_addr, server)];
    if let Some(b) = bulk {
        parties.push(Party::new(BULK_SERVER, &mut b.sender));
        parties.push(Party::new(BULK_CLIENT, &mut b.receiver));
    }
    parties
}

/// An SSH user's lease (see [`mosh_parties`]).
fn ssh_parties(
    eps: &mut (SshClient, SshServer, Option<BulkFlow>),
    c_addr: Addr,
    s_addr: Addr,
) -> Vec<Party<'_>> {
    let (client, server, bulk) = eps;
    let mut parties: Vec<Party<'_>> = vec![Party::new(c_addr, client), Party::new(s_addr, server)];
    if let Some(b) = bulk {
        parties.push(Party::new(BULK_SERVER, &mut b.sender));
        parties.push(Party::new(BULK_CLIENT, &mut b.receiver));
    }
    parties
}

const BULK_CLIENT: Addr = Addr::new(1, 9999);
const BULK_SERVER: Addr = Addr::new(2, 8888);

/// A greedy bulk TCP download sharing the bottleneck (LTE experiment).
struct BulkFlow {
    sender: BulkSender,
    receiver: BulkReceiver,
}

impl BulkFlow {
    fn new(net: &mut Network) -> Self {
        net.register(BULK_CLIENT, Side::Client);
        net.register(BULK_SERVER, Side::Server);
        let mut server = TcpEndpoint::new(BULK_SERVER, BULK_CLIENT);
        server.write(&vec![0u8; 4_000_000]);
        BulkFlow {
            sender: BulkSender { ep: server },
            receiver: BulkReceiver {
                ep: TcpEndpoint::new(BULK_CLIENT, BULK_SERVER),
            },
        }
    }
}

/// The download's server side: keeps its send buffer topped up so the
/// flow never goes idle (an endless download).
struct BulkSender {
    ep: TcpEndpoint,
}

impl Endpoint for BulkSender {
    fn receive(&mut self, now: Millis, _from: Addr, wire: &[u8], _events: &mut Vec<SessionEvent>) {
        self.ep.receive(now, wire);
    }

    fn tick(
        &mut self,
        now: Millis,
        out: &mut Vec<(Addr, Vec<u8>)>,
        _events: &mut Vec<SessionEvent>,
    ) {
        if self.ep.backlog() < 2_000_000 {
            self.ep.write(&vec![0u8; 4_000_000]);
        }
        out.extend(self.ep.tick(now));
    }

    fn next_wakeup(&self, now: Millis) -> Millis {
        // The greedy flow is paced by its own congestion-window dynamics
        // every millisecond; match the historical per-millisecond drive.
        now + 1
    }
}

/// The download's client side: drains delivered bytes and discards them.
struct BulkReceiver {
    ep: TcpEndpoint,
}

impl Endpoint for BulkReceiver {
    fn receive(&mut self, now: Millis, _from: Addr, wire: &[u8], _events: &mut Vec<SessionEvent>) {
        self.ep.receive(now, wire);
        let _ = self.ep.read();
    }

    fn tick(
        &mut self,
        now: Millis,
        out: &mut Vec<(Addr, Vec<u8>)>,
        _events: &mut Vec<SessionEvent>,
    ) {
        out.extend(self.ep.tick(now));
    }

    fn next_wakeup(&self, now: Millis) -> Millis {
        now + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::small_trace;

    #[test]
    fn mosh_replay_measures_most_keystrokes() {
        let trace = small_trace(60);
        let cfg = ReplayConfig::over(LinkConfig::lan(), LinkConfig::lan());
        let out = replay_mosh(&trace, &cfg);
        assert!(out.measured >= 50, "measured {}", out.measured);
        // LAN: everything fast.
        assert!(out.latencies.median() < 200.0);
    }

    #[test]
    fn ssh_replay_measures_most_keystrokes() {
        let trace = small_trace(60);
        let cfg = ReplayConfig::over(LinkConfig::lan(), LinkConfig::lan());
        let out = replay_ssh(&trace, &cfg);
        assert!(out.measured >= 50, "measured {}", out.measured);
        assert!(out.latencies.median() < 100.0);
    }

    #[test]
    fn mosh_wins_on_high_latency_links() {
        let trace = small_trace(80);
        let slow = LinkConfig {
            delay_ms: 250,
            ..LinkConfig::lan()
        };
        let cfg = ReplayConfig::over(slow.clone(), slow);
        let mosh = replay_mosh(&trace, &cfg);
        let ssh = replay_ssh(&trace, &cfg);
        assert!(
            mosh.latencies.median() < ssh.latencies.median() / 3.0,
            "mosh median {} vs ssh {}",
            mosh.latencies.median(),
            ssh.latencies.median()
        );
        assert!(mosh.instant > 0, "predictions fired");
        assert!((ssh.latencies.median() - 500.0).abs() < 120.0);
    }

    #[test]
    fn replays_are_deterministic() {
        let trace = small_trace(40);
        let cfg = ReplayConfig::over(LinkConfig::lan(), LinkConfig::lan());
        let a = replay_mosh(&trace, &cfg);
        let b = replay_mosh(&trace, &cfg);
        assert_eq!(a.latencies.median(), b.latencies.median());
        assert_eq!(a.instant, b.instant);
    }

    #[test]
    fn bulk_download_replay_still_completes() {
        let trace = small_trace(20);
        let mut cfg = ReplayConfig::over(LinkConfig::lte_uplink(), LinkConfig::lte_downlink());
        cfg.bulk_download = true;
        let out = replay_mosh(&trace, &cfg);
        assert!(out.measured >= 10, "measured {}", out.measured);
    }
}
