//! The replay engine: the paper's evaluation method (§4).
//!
//! "A client-side process played the user portion of the traces, and a
//! server-side process waited for the expected user input and then replied
//! (in time) with the prerecorded server output." Our applications are
//! deterministic, so running them live *is* replying with the prerecorded
//! output — byte-for-byte and with the same think-time.
//!
//! For every keystroke we record the user-interface response latency:
//!
//! * **Mosh** — zero when the prediction engine displayed the keystroke's
//!   effect speculatively at input time; otherwise the arrival time of the
//!   first server frame whose echo ack covers the keystroke (the screen
//!   then provably reflects it). The echo ack lags real screen content by
//!   up to 50 ms, so this measure is *conservative against Mosh*.
//! * **SSH** — the time the client has rendered every output byte the
//!   application produced in response to the keystroke (known exactly
//!   from a deterministic dry run).
//!
//! Keystrokes that produce no output at all (and were not predicted) are
//! excluded from both systems alike: no response ever becomes visible.

use crate::stats::Latencies;
use crate::synth::{KeyKind, TraceKey, UserTrace};
use crate::workload::{WorkloadApp, SWITCH_BYTE};
use mosh_core::{Millis, MoshClient, MoshServer};
use mosh_crypto::Base64Key;
use mosh_net::{Addr, LinkConfig, Network, Side};
use mosh_prediction::DisplayPreference;
use mosh_ssh::{SshClient, SshServer};
use mosh_tcp::TcpEndpoint;
use std::collections::VecDeque;

/// Configuration of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Client→server link.
    pub up: LinkConfig,
    /// Server→client link.
    pub down: LinkConfig,
    /// Network RNG seed.
    pub seed: u64,
    /// Prediction display preference (Mosh only).
    pub preference: DisplayPreference,
    /// Collection-interval override in ms (Figure 3's sweep).
    pub mindelay: Option<Millis>,
    /// Run a concurrent bulk TCP download through the same downlink
    /// bottleneck (the LTE experiment).
    pub bulk_download: bool,
}

impl ReplayConfig {
    /// A replay over the given pair of links with defaults otherwise.
    pub fn over(up: LinkConfig, down: LinkConfig) -> Self {
        ReplayConfig {
            up,
            down,
            seed: 42,
            preference: DisplayPreference::Adaptive,
            mindelay: None,
            bulk_download: false,
        }
    }
}

/// The outcome of replaying one trace through one system.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-keystroke response latencies (ms).
    pub latencies: Latencies,
    /// Keystrokes whose effect displayed instantly (Mosh predictions).
    pub instant: u64,
    /// Keystrokes measured.
    pub measured: u64,
    /// Mispredictions repaired (Mosh).
    pub mispredicted: u64,
    /// Server-side `(write arrival, shipped)` pairs (Figure 3).
    pub write_delays: Vec<(Millis, Millis)>,
    /// SSP sender stats (ablations); zeroed for SSH.
    pub sender_stats: mosh_ssp::sender::SenderStats,
}

/// A flattened trace: absolute keystroke times plus the switch markers.
struct FlatTrace {
    keys: Vec<(Millis, Vec<u8>, KeyKind, bool)>, // (at, bytes, kind, measured)
    apps: Vec<crate::workload::AppKind>,
}

fn flatten(trace: &UserTrace) -> FlatTrace {
    let mut keys = Vec::new();
    let mut now: Millis = 1500; // Let the session settle first.
    for (i, seg) in trace.segments.iter().enumerate() {
        if i > 0 {
            now += 1500;
            keys.push((now, vec![SWITCH_BYTE], KeyKind::Control, false));
        }
        for TraceKey {
            gap_ms,
            bytes,
            kind,
        } in &seg.keys
        {
            now += gap_ms;
            keys.push((now, bytes.clone(), *kind, true));
        }
    }
    FlatTrace {
        keys,
        apps: trace.segments.iter().map(|s| s.app).collect(),
    }
}

/// Dry-runs the workload to learn each keystroke's cumulative response
/// byte target (and which keystrokes produce any output at all).
fn dry_run(flat: &FlatTrace) -> Vec<u64> {
    let mut app = WorkloadApp::new(flat.apps.clone());
    use mosh_core::apps::Application;
    let mut cumulative: u64 = app.start(0).iter().map(|w| w.bytes.len() as u64).sum();
    let mut targets = Vec::with_capacity(flat.keys.len());
    for (at, bytes, _, _) in &flat.keys {
        let writes = app.on_input(*at, bytes);
        let produced: u64 = writes.iter().map(|w| w.bytes.len() as u64).sum();
        cumulative += produced;
        // Target 0 marks "no visible response".
        targets.push(if produced == 0 { 0 } else { cumulative });
    }
    targets
}

/// Replays a trace through a full Mosh session over the emulated network.
pub fn replay_mosh(trace: &UserTrace, cfg: &ReplayConfig) -> ReplayOutcome {
    let flat = flatten(trace);
    let targets = dry_run(&flat);
    let key = Base64Key::from_bytes([0x4d; 16]);
    let c_addr = Addr::new(1, 1000);
    let s_addr = Addr::new(2, 60001);
    let mut net = Network::new(cfg.up.clone(), cfg.down.clone(), cfg.seed);
    net.register(c_addr, Side::Client);
    net.register(s_addr, Side::Server);

    let mut client = MoshClient::new(key.clone(), s_addr, 80, 24, cfg.preference);
    let mut server = MoshServer::new(key, Box::new(WorkloadApp::new(flat.apps.clone())));
    if let Some(md) = cfg.mindelay {
        server.set_mindelay(md);
    }

    let mut bulk = cfg.bulk_download.then(|| bulk_flow(&mut net));

    let mut latencies = Latencies::new();
    let mut instant = 0u64;
    let mut measured = 0u64;
    // Outstanding unresolved keystrokes: (stream index, typed at, counted).
    let mut pending: VecDeque<(u64, Millis, bool)> = VecDeque::new();

    let end = flat.keys.last().map(|k| k.0).unwrap_or(0) + 20_000;
    let mut next_key = 0usize;
    let mut now: Millis = 0;
    while now < end {
        while next_key < flat.keys.len() && flat.keys[next_key].0 <= now {
            let (_, bytes, _, count_it) = &flat.keys[next_key];
            let shown = client.keystroke(now, bytes);
            let idx = client.input_end_index();
            let countable = *count_it && targets[next_key] != 0;
            if shown && countable {
                instant += 1;
                measured += 1;
                latencies.push(0.0);
            } else {
                pending.push_back((idx, now, countable));
            }
            next_key += 1;
        }
        for (to, w) in client.tick(now) {
            net.send(c_addr, to, w);
        }
        for (to, w) in server.tick(now) {
            net.send(s_addr, to, w);
        }
        if let Some(b) = bulk.as_mut() {
            b.run(&mut net, now);
        }
        now += 1;
        net.advance_to(now);
        while let Some(dg) = net.recv(s_addr) {
            server.receive(now, dg.from, &dg.payload);
        }
        let mut got_any = false;
        while let Some(dg) = net.recv(c_addr) {
            client.receive(now, &dg.payload);
            got_any = true;
        }
        if let Some(b) = bulk.as_mut() {
            b.drain(&mut net, now);
        }
        if got_any {
            let ack = client.echo_ack();
            while let Some(&(idx, at, countable)) = pending.front() {
                if ack >= idx {
                    if countable {
                        measured += 1;
                        latencies.push((now - at) as f64);
                    }
                    pending.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    ReplayOutcome {
        latencies,
        instant,
        measured,
        mispredicted: client.prediction_stats().mispredicted,
        write_delays: server.write_delays().to_vec(),
        sender_stats: *server.sender_stats(),
    }
}

/// Replays a trace through the SSH baseline over the emulated network.
pub fn replay_ssh(trace: &UserTrace, cfg: &ReplayConfig) -> ReplayOutcome {
    let flat = flatten(trace);
    let targets = dry_run(&flat);
    let c_addr = Addr::new(1, 5001);
    let s_addr = Addr::new(2, 22);
    let mut net = Network::new(cfg.up.clone(), cfg.down.clone(), cfg.seed);
    net.register(c_addr, Side::Client);
    net.register(s_addr, Side::Server);

    let mut client = SshClient::new(c_addr, s_addr, 80, 24);
    let mut server = SshServer::new(
        s_addr,
        c_addr,
        Box::new(WorkloadApp::new(flat.apps.clone())),
    );
    let mut bulk = cfg.bulk_download.then(|| bulk_flow(&mut net));

    let mut latencies = Latencies::new();
    let mut measured = 0u64;
    let mut pending: VecDeque<(u64, Millis)> = VecDeque::new(); // (byte target, at)

    let end = flat.keys.last().map(|k| k.0).unwrap_or(0) + 130_000;
    let mut next_key = 0usize;
    let mut now: Millis = 0;
    while now < end {
        while next_key < flat.keys.len() && flat.keys[next_key].0 <= now {
            let (_, bytes, _, count_it) = &flat.keys[next_key];
            client.keystroke(now, bytes);
            if *count_it && targets[next_key] != 0 {
                pending.push_back((targets[next_key], now));
            }
            next_key += 1;
        }
        for (to, w) in client.tick(now) {
            net.send(c_addr, to, w);
        }
        for (to, w) in server.tick(now) {
            net.send(s_addr, to, w);
        }
        if let Some(b) = bulk.as_mut() {
            b.run(&mut net, now);
        }
        now += 1;
        net.advance_to(now);
        while let Some(dg) = net.recv(s_addr) {
            server.receive(now, &dg.payload);
        }
        let mut got_any = false;
        while let Some(dg) = net.recv(c_addr) {
            client.receive(now, &dg.payload);
            got_any = true;
        }
        if let Some(b) = bulk.as_mut() {
            b.drain(&mut net, now);
        }
        if got_any {
            let rendered = client.rendered_bytes();
            while let Some(&(target, at)) = pending.front() {
                if rendered >= target {
                    measured += 1;
                    latencies.push((now - at) as f64);
                    pending.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    ReplayOutcome {
        latencies,
        instant: 0,
        measured,
        mispredicted: 0,
        write_delays: Vec::new(),
        sender_stats: mosh_ssp::sender::SenderStats::default(),
    }
}

/// A greedy bulk TCP download sharing the bottleneck (LTE experiment).
struct BulkFlow {
    server: TcpEndpoint,
    client: TcpEndpoint,
}

fn bulk_flow(net: &mut Network) -> BulkFlow {
    let bc = Addr::new(1, 9999);
    let bs = Addr::new(2, 8888);
    net.register(bc, Side::Client);
    net.register(bs, Side::Server);
    let mut server = TcpEndpoint::new(bs, bc);
    server.write(&vec![0u8; 4_000_000]);
    BulkFlow {
        server,
        client: TcpEndpoint::new(bc, bs),
    }
}

impl BulkFlow {
    fn run(&mut self, net: &mut Network, now: Millis) {
        // Endless download: keep the send buffer topped up.
        if self.server.backlog() < 2_000_000 {
            self.server.write(&vec![0u8; 4_000_000]);
        }
        for (to, w) in self.server.tick(now) {
            net.send(self.server.addr(), to, w);
        }
        for (to, w) in self.client.tick(now) {
            net.send(self.client.addr(), to, w);
        }
    }

    fn drain(&mut self, net: &mut Network, now: Millis) {
        while let Some(dg) = net.recv(self.server.addr()) {
            self.server.receive(now, &dg.payload);
        }
        while let Some(dg) = net.recv(self.client.addr()) {
            self.client.receive(now, &dg.payload);
            let _ = self.client.read();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::small_trace;

    #[test]
    fn mosh_replay_measures_most_keystrokes() {
        let trace = small_trace(60);
        let cfg = ReplayConfig::over(LinkConfig::lan(), LinkConfig::lan());
        let out = replay_mosh(&trace, &cfg);
        assert!(out.measured >= 50, "measured {}", out.measured);
        // LAN: everything fast.
        assert!(out.latencies.median() < 200.0);
    }

    #[test]
    fn ssh_replay_measures_most_keystrokes() {
        let trace = small_trace(60);
        let cfg = ReplayConfig::over(LinkConfig::lan(), LinkConfig::lan());
        let out = replay_ssh(&trace, &cfg);
        assert!(out.measured >= 50, "measured {}", out.measured);
        assert!(out.latencies.median() < 100.0);
    }

    #[test]
    fn mosh_wins_on_high_latency_links() {
        let trace = small_trace(80);
        let slow = LinkConfig {
            delay_ms: 250,
            ..LinkConfig::lan()
        };
        let cfg = ReplayConfig::over(slow.clone(), slow);
        let mosh = replay_mosh(&trace, &cfg);
        let ssh = replay_ssh(&trace, &cfg);
        assert!(
            mosh.latencies.median() < ssh.latencies.median() / 3.0,
            "mosh median {} vs ssh {}",
            mosh.latencies.median(),
            ssh.latencies.median()
        );
        assert!(mosh.instant > 0, "predictions fired");
        assert!((ssh.latencies.median() - 500.0).abs() < 120.0);
    }

    #[test]
    fn replays_are_deterministic() {
        let trace = small_trace(40);
        let cfg = ReplayConfig::over(LinkConfig::lan(), LinkConfig::lan());
        let a = replay_mosh(&trace, &cfg);
        let b = replay_mosh(&trace, &cfg);
        assert_eq!(a.latencies.median(), b.latencies.median());
        assert_eq!(a.instant, b.instant);
    }
}
