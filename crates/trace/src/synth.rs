//! Synthetic keystroke traces: six users, 9,986 keystrokes.
//!
//! The paper's traces are private, so we synthesize six user profiles
//! matching its described workload (§4): shells, mail clients, editors,
//! chat, and text-mode browsing, with "typical, real-world" inter-keystroke
//! timing and the paper's observed mix — roughly 70% predictable "typing"
//! and 30% "navigation" keystrokes. Long idle periods are compressed, as
//! the paper's replay did.

use crate::workload::AppKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total keystrokes across all six users (as in the paper).
pub const TOTAL_KEYSTROKES: usize = 9_986;

/// Per-user keystroke counts summing to [`TOTAL_KEYSTROKES`].
pub const USER_KEYSTROKES: [usize; 6] = [2105, 1987, 1612, 1498, 1411, 1373];

/// Classification of a keystroke for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Ordinary typing (printables, backspace): predictable echo.
    Typing,
    /// Navigation (arrows, paging, mail index movement): unpredictable.
    Navigation,
    /// Control (ENTER, escape, app switching): epoch boundaries.
    Control,
}

/// One keystroke of a trace.
#[derive(Debug, Clone)]
pub struct TraceKey {
    /// Gap since the previous keystroke in milliseconds.
    pub gap_ms: u64,
    /// The bytes the client sends.
    pub bytes: Vec<u8>,
    /// Reporting class.
    pub kind: KeyKind,
}

/// A contiguous stretch of a session inside one application.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Which application class hosts this segment.
    pub app: AppKind,
    /// The keystrokes, in order.
    pub keys: Vec<TraceKey>,
}

/// One user's full trace.
#[derive(Debug, Clone)]
pub struct UserTrace {
    /// Profile name (for reports).
    pub name: &'static str,
    /// Segments in session order.
    pub segments: Vec<Segment>,
}

impl UserTrace {
    /// Total keystrokes in the trace (excluding app-switch controls the
    /// replay inserts between segments).
    pub fn keystrokes(&self) -> usize {
        self.segments.iter().map(|s| s.keys.len()).sum()
    }

    /// Fraction of keystrokes classified as typing.
    pub fn typing_fraction(&self) -> f64 {
        let total = self.keystrokes().max(1);
        let typing = self
            .segments
            .iter()
            .flat_map(|s| &s.keys)
            .filter(|k| k.kind == KeyKind::Typing)
            .count();
        typing as f64 / total as f64
    }
}

const WORDS: &[&str] = &[
    "the", "of", "and", "to", "in", "is", "that", "for", "it", "was", "on", "are", "as", "with",
    "his", "they", "at", "this", "have", "from", "or", "had", "by", "but", "some", "what", "there",
    "we", "can", "out", "other", "were", "all", "your", "when", "up", "use", "word", "how", "said",
    "each", "she", "which", "their", "time", "will", "way", "about", "many", "then", "them",
    "would", "write", "like", "these", "her", "long", "make", "thing", "see", "him", "two", "has",
    "look", "more", "day", "could", "come", "did", "number", "sound", "most", "people", "over",
    "know", "water", "than", "call", "first",
];

const COMMANDS: &[&str] = &[
    "ls",
    "echo finished building the tree",
    "cat 12",
    "echo remember to update the changelog before the release",
    "seq 8",
    "echo hello world this is a longer line of shell typing",
    "cat 6",
    "echo the quick brown fox jumps over the lazy dog",
    "echo reviewing the patch series now will reply with comments",
];

struct Gen<'a> {
    rng: &'a mut StdRng,
}

impl Gen<'_> {
    /// Inter-key gap while fluently typing (~120–300 ms).
    fn typing_gap(&mut self) -> u64 {
        80 + self.rng.gen_range(0..180u64) + self.rng.gen_range(0..60u64)
    }

    /// Pause at a word boundary or line start (~0.3–2 s, compressed).
    fn think_gap(&mut self) -> u64 {
        300 + self.rng.gen_range(0..1700u64)
    }

    /// Pause while reading before navigating (~0.4–3 s, compressed).
    fn read_gap(&mut self) -> u64 {
        400 + self.rng.gen_range(0..2600u64)
    }

    fn type_text(&mut self, text: &str, out: &mut Vec<TraceKey>, budget: &mut usize) {
        for (i, ch) in text.chars().enumerate() {
            if *budget == 0 {
                return;
            }
            let gap = if i == 0 {
                self.think_gap()
            } else {
                self.typing_gap()
            };
            out.push(TraceKey {
                gap_ms: gap,
                bytes: ch.to_string().into_bytes(),
                kind: KeyKind::Typing,
            });
            *budget -= 1;
            // Occasional typo corrected with one backspace.
            if *budget > 0 && self.rng.gen_bool(0.02) {
                out.push(TraceKey {
                    gap_ms: self.typing_gap(),
                    bytes: vec![0x7f],
                    kind: KeyKind::Typing,
                });
                *budget -= 1;
            }
        }
    }

    fn press(
        &mut self,
        bytes: &[u8],
        kind: KeyKind,
        gap: u64,
        out: &mut Vec<TraceKey>,
        budget: &mut usize,
    ) {
        if *budget == 0 {
            return;
        }
        out.push(TraceKey {
            gap_ms: gap,
            bytes: bytes.to_vec(),
            kind,
        });
        *budget -= 1;
    }
}

fn shell_segment(rng: &mut StdRng, budget: &mut usize, chat_style: bool) -> Segment {
    let mut g = Gen { rng };
    let mut keys = Vec::new();
    while *budget > 0 && keys.len() < 400 {
        if chat_style {
            // Chat: lines of prose sent with ENTER ("echo" as the message).
            let n = g.rng.gen_range(5..14);
            let mut line = String::from("echo");
            for _ in 0..n {
                line.push(' ');
                line.push_str(WORDS[g.rng.gen_range(0..WORDS.len())]);
            }
            g.type_text(&line, &mut keys, budget);
            let gap = g.typing_gap();
            g.press(b"\r", KeyKind::Control, gap, &mut keys, budget);
        } else {
            let cmd = COMMANDS[g.rng.gen_range(0..COMMANDS.len())];
            g.type_text(cmd, &mut keys, budget);
            let gap = g.typing_gap();
            g.press(b"\r", KeyKind::Control, gap, &mut keys, budget);
        }
    }
    Segment {
        app: AppKind::Shell,
        keys,
    }
}

fn editor_segment(rng: &mut StdRng, budget: &mut usize, vi_style: bool) -> Segment {
    let mut g = Gen { rng };
    let mut keys = Vec::new();
    while *budget > 0 && keys.len() < 500 {
        // Type a phrase of code/prose.
        let n = g.rng.gen_range(5..12);
        for _ in 0..n {
            let w = WORDS[g.rng.gen_range(0..WORDS.len())];
            g.type_text(w, &mut keys, budget);
            let gap = g.typing_gap();
            g.press(b" ", KeyKind::Typing, gap, &mut keys, budget);
        }
        let gap = g.typing_gap();
        g.press(b"\r", KeyKind::Control, gap, &mut keys, budget);
        // Navigate around occasionally (arrows; in vi, via normal mode).
        if vi_style && *budget > 2 && g.rng.gen_bool(0.7) {
            let gap = g.think_gap();
            g.press(b"\x1b", KeyKind::Control, gap, &mut keys, budget);
            for _ in 0..g.rng.gen_range(2..8) {
                let dir: &[u8] = match g.rng.gen_range(0..4) {
                    0 => b"\x1b[A",
                    1 => b"\x1b[B",
                    2 => b"\x1b[C",
                    _ => b"\x1b[D",
                };
                let gap = g.read_gap();
                g.press(dir, KeyKind::Navigation, gap, &mut keys, budget);
            }
            let gap = g.think_gap();
            g.press(b"i", KeyKind::Control, gap, &mut keys, budget);
        } else if g.rng.gen_bool(0.5) {
            for _ in 0..g.rng.gen_range(2..6) {
                let dir: &[u8] = if g.rng.gen_bool(0.5) {
                    b"\x1b[A"
                } else {
                    b"\x1b[B"
                };
                let gap = g.read_gap();
                g.press(dir, KeyKind::Navigation, gap, &mut keys, budget);
            }
        }
    }
    Segment {
        app: AppKind::Editor,
        keys,
    }
}

fn mail_segment(rng: &mut StdRng, budget: &mut usize) -> Segment {
    let mut g = Gen { rng };
    let mut keys = Vec::new();
    while *budget > 0 && keys.len() < 300 {
        // Browse the index ("n" to move to the next message, §3.2).
        for _ in 0..g.rng.gen_range(5..13) {
            let k: &[u8] = if g.rng.gen_bool(0.7) { b"n" } else { b"k" };
            let gap = g.read_gap();
            g.press(k, KeyKind::Navigation, gap, &mut keys, budget);
        }
        let gap = g.read_gap();
        g.press(b"\r", KeyKind::Control, gap, &mut keys, budget);
        let gap = g.read_gap();
        g.press(b"i", KeyKind::Navigation, gap, &mut keys, budget);
    }
    Segment {
        app: AppKind::Mail,
        keys,
    }
}

fn pager_segment(rng: &mut StdRng, budget: &mut usize) -> Segment {
    let mut g = Gen { rng };
    let mut keys = Vec::new();
    while *budget > 0 && keys.len() < 260 {
        let k: &[u8] = match g.rng.gen_range(0..4) {
            0 => b" ",
            1 => b"j",
            2 => b"j",
            _ => b"b",
        };
        let gap = g.read_gap();
        g.press(k, KeyKind::Navigation, gap, &mut keys, budget);
    }
    Segment {
        app: AppKind::Pager,
        keys,
    }
}

/// Generates one user's trace with exactly `count` keystrokes.
fn user(name: &'static str, seed: u64, count: usize, profile: usize) -> UserTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut budget = count;
    let mut segments = Vec::new();
    while budget > 0 {
        let seg = match profile {
            // bash/zsh heavy user.
            0 => shell_segment(&mut rng, &mut budget, false),
            // emacs user: mostly editor, some shell.
            1 => {
                if rng.gen_bool(0.75) {
                    editor_segment(&mut rng, &mut budget, false)
                } else {
                    shell_segment(&mut rng, &mut budget, false)
                }
            }
            // vim user.
            2 => {
                if rng.gen_bool(0.75) {
                    editor_segment(&mut rng, &mut budget, true)
                } else {
                    shell_segment(&mut rng, &mut budget, false)
                }
            }
            // alpine/mutt user: browsing the index plus composing
            // replies (remote-echo typing, like alpine's composer).
            3 => {
                if rng.gen_bool(0.7) {
                    mail_segment(&mut rng, &mut budget)
                } else {
                    shell_segment(&mut rng, &mut budget, false)
                }
            }
            // irssi/barnowl chat user.
            4 => shell_segment(&mut rng, &mut budget, true),
            // links browsing user: pager plus shell.
            _ => {
                if rng.gen_bool(0.7) {
                    pager_segment(&mut rng, &mut budget)
                } else {
                    shell_segment(&mut rng, &mut budget, false)
                }
            }
        };
        if !seg.keys.is_empty() {
            segments.push(seg);
        }
    }
    UserTrace { name, segments }
}

/// The six users of the evaluation, 9,986 keystrokes in total.
pub fn six_users() -> Vec<UserTrace> {
    vec![
        user("user1-bash", 101, USER_KEYSTROKES[0], 0),
        user("user2-emacs", 202, USER_KEYSTROKES[1], 1),
        user("user3-vim", 303, USER_KEYSTROKES[2], 2),
        user("user4-alpine", 404, USER_KEYSTROKES[3], 3),
        user("user5-irssi", 505, USER_KEYSTROKES[4], 4),
        user("user6-links", 606, USER_KEYSTROKES[5], 5),
    ]
}

/// A small trace for fast tests: one shell user, `n` keystrokes.
pub fn small_trace(n: usize) -> UserTrace {
    user("test-user", 7, n, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_users_total_exactly_9986() {
        let users = six_users();
        assert_eq!(users.len(), 6);
        let total: usize = users.iter().map(|u| u.keystrokes()).sum();
        assert_eq!(total, TOTAL_KEYSTROKES);
    }

    #[test]
    fn per_user_counts_match() {
        for (u, want) in six_users().iter().zip(USER_KEYSTROKES) {
            assert_eq!(u.keystrokes(), want, "{}", u.name);
        }
    }

    #[test]
    fn typing_fraction_is_about_70_percent() {
        let users = six_users();
        let total: usize = users.iter().map(|u| u.keystrokes()).sum();
        let typing: f64 = users
            .iter()
            .map(|u| u.typing_fraction() * u.keystrokes() as f64)
            .sum();
        let frac = typing / total as f64;
        assert!(
            (0.65..=0.82).contains(&frac),
            "typing fraction {frac:.2} should be near the paper's ~70%"
        );
    }

    #[test]
    fn traces_are_deterministic() {
        let a = six_users();
        let b = six_users();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.keystrokes(), y.keystrokes());
            for (sx, sy) in x.segments.iter().zip(&y.segments) {
                for (kx, ky) in sx.keys.iter().zip(&sy.keys) {
                    assert_eq!(kx.bytes, ky.bytes);
                    assert_eq!(kx.gap_ms, ky.gap_ms);
                }
            }
        }
    }

    #[test]
    fn gaps_are_compressed_real_world() {
        for u in six_users() {
            for s in &u.segments {
                for k in &s.keys {
                    assert!(k.gap_ms >= 80, "no superhuman typing");
                    assert!(k.gap_ms <= 5000, "long idles are sped up");
                }
            }
        }
    }

    #[test]
    fn small_trace_is_small() {
        assert_eq!(small_trace(50).keystrokes(), 50);
    }
}
