//! Latency statistics: the numbers every table in §4 reports.

/// A collection of latency samples in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct Latencies {
    samples: Vec<f64>,
}

impl Latencies {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, ms: f64) {
        self.samples.push(ms);
    }

    /// Merges another collection into this one.
    pub fn extend(&mut self, other: &Latencies) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples, in insertion order (exact-equality comparisons in
    /// determinism tests).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The p-th percentile (0–100), by nearest-rank on sorted samples.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// The median latency.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The population standard deviation (σ, as the paper reports).
    pub fn stddev(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Fraction of samples ≤ `threshold_ms` (CDF point).
    pub fn fraction_below(&self, threshold_ms: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s <= threshold_ms).count() as f64
            / self.samples.len() as f64
    }

    /// CDF points `(latency_ms, cumulative_percent)` at the given
    /// thresholds — the series Figure 2 plots.
    pub fn cdf(&self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        thresholds
            .iter()
            .map(|&t| (t, 100.0 * self.fraction_below(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Latencies {
        let mut l = Latencies::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
            l.push(v);
        }
        l
    }

    #[test]
    fn median_of_known_values() {
        assert!((sample().median() - 5.0).abs() <= 1.0);
        let mut one = Latencies::new();
        one.push(42.0);
        assert_eq!(one.median(), 42.0);
    }

    #[test]
    fn mean_of_known_values() {
        assert!((sample().mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn stddev_of_known_values() {
        // Population σ of 1..=10 is ~2.872.
        assert!((sample().stddev() - 2.8723).abs() < 0.001);
    }

    #[test]
    fn percentiles_are_ordered() {
        let l = sample();
        assert!(l.percentile(10.0) <= l.percentile(50.0));
        assert!(l.percentile(50.0) <= l.percentile(99.0));
    }

    #[test]
    fn cdf_is_monotone() {
        let l = sample();
        let cdf = l.cdf(&[0.0, 2.0, 5.0, 10.0, 100.0]);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().expect("non-empty").1, 100.0);
    }

    #[test]
    fn empty_collection_is_safe() {
        let l = Latencies::new();
        assert_eq!(l.median(), 0.0);
        assert_eq!(l.mean(), 0.0);
        assert_eq!(l.stddev(), 0.0);
        assert!(l.is_empty());
    }

    #[test]
    fn extend_merges() {
        let mut a = sample();
        let b = sample();
        a.extend(&b);
        assert_eq!(a.len(), 20);
    }
}
