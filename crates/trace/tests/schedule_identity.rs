//! Replay under event-driven stepping is statistic-identical to the
//! seed's 1 ms pump.
//!
//! `replay_mosh`/`replay_ssh` now drive sessions with `SessionLoop`,
//! resolving keystroke latencies from typed events instead of polling
//! per millisecond. This test keeps the **historical 1 ms replay loop**
//! verbatim as a reference implementation and demands the ported engine
//! reproduce it exactly: the same latency samples in the same order, the
//! same instant/measured counts, the same server-side write delays, the
//! same sender counters — across EV-DO, the lossy netem path, and the
//! rate-limited Singapore links.

use mosh_core::{Millis, MoshClient, MoshServer};
use mosh_crypto::Base64Key;
use mosh_net::{Addr, LinkConfig, Network, Side};
use mosh_prediction::DisplayPreference;
use mosh_ssh::{SshClient, SshServer};
use mosh_trace::{
    replay_mosh, replay_ssh, small_trace, AppKind, Latencies, ReplayConfig, UserTrace, WorkloadApp,
    SWITCH_BYTE,
};
use std::collections::VecDeque;

/// Historical latency-resolution results from the 1 ms loop.
struct Reference {
    samples: Vec<f64>,
    instant: u64,
    measured: u64,
    mispredicted: u64,
    write_delays: Vec<(Millis, Millis)>,
    sender_stats: mosh_ssp::sender::SenderStats,
}

/// A flattened key script: (absolute time, bytes, measured).
type FlatKeys = Vec<(Millis, Vec<u8>, bool)>;

/// Flattens exactly as the replay engine does (kept in lockstep by the
/// assertions below — a drift in either copy shows up as divergence).
fn flatten(trace: &UserTrace) -> (FlatKeys, Vec<AppKind>) {
    let mut keys = Vec::new();
    let mut now: Millis = 1500;
    for (i, seg) in trace.segments.iter().enumerate() {
        if i > 0 {
            now += 1500;
            keys.push((now, vec![SWITCH_BYTE], false));
        }
        for k in &seg.keys {
            now += k.gap_ms;
            keys.push((now, k.bytes.clone(), true));
        }
    }
    (keys, trace.segments.iter().map(|s| s.app).collect())
}

fn dry_run_targets(keys: &[(Millis, Vec<u8>, bool)], apps: &[AppKind]) -> Vec<u64> {
    use mosh_core::apps::Application;
    let mut app = WorkloadApp::new(apps.to_vec());
    let mut cumulative: u64 = app.start(0).iter().map(|w| w.bytes.len() as u64).sum();
    let mut targets = Vec::with_capacity(keys.len());
    for (at, bytes, _) in keys {
        let produced: u64 = app
            .on_input(*at, bytes)
            .iter()
            .map(|w| w.bytes.len() as u64)
            .sum();
        cumulative += produced;
        targets.push(if produced == 0 { 0 } else { cumulative });
    }
    targets
}

/// The seed's replay_mosh, verbatim: 1 ms ticks, per-address mailbox
/// drains, got_any-gated resolution.
fn reference_mosh(trace: &UserTrace, cfg: &ReplayConfig) -> Reference {
    let (keys, apps) = flatten(trace);
    let targets = dry_run_targets(&keys, &apps);
    let key = Base64Key::from_bytes([0x4d; 16]);
    let c_addr = Addr::new(1, 1000);
    let s_addr = Addr::new(2, 60001);
    let mut net = Network::new(cfg.up.clone(), cfg.down.clone(), cfg.seed);
    net.register(c_addr, Side::Client);
    net.register(s_addr, Side::Server);

    let mut client = MoshClient::new(key.clone(), s_addr, 80, 24, cfg.preference);
    let mut server = MoshServer::new(key, Box::new(WorkloadApp::new(apps)));
    if let Some(md) = cfg.mindelay {
        server.set_mindelay(md);
    }

    let mut latencies = Latencies::new();
    let mut instant = 0u64;
    let mut measured = 0u64;
    let mut pending: VecDeque<(u64, Millis, bool)> = VecDeque::new();

    let end = keys.last().map(|k| k.0).unwrap_or(0) + 20_000;
    let mut next_key = 0usize;
    let mut now: Millis = 0;
    while now < end {
        while next_key < keys.len() && keys[next_key].0 <= now {
            let (_, bytes, count_it) = &keys[next_key];
            let shown = client.keystroke(now, bytes);
            let idx = client.input_end_index();
            let countable = *count_it && targets[next_key] != 0;
            if shown && countable {
                instant += 1;
                measured += 1;
                latencies.push(0.0);
            } else {
                pending.push_back((idx, now, countable));
            }
            next_key += 1;
        }
        for (to, w) in client.tick(now) {
            net.send(c_addr, to, w);
        }
        for (to, w) in server.tick(now) {
            net.send(s_addr, to, w);
        }
        now += 1;
        net.advance_to(now);
        while let Some(dg) = net.recv(s_addr) {
            server.receive(now, dg.from, &dg.payload);
        }
        let mut got_any = false;
        while let Some(dg) = net.recv(c_addr) {
            client.receive(now, &dg.payload);
            got_any = true;
        }
        if got_any {
            let ack = client.echo_ack();
            while let Some(&(idx, at, countable)) = pending.front() {
                if ack >= idx {
                    if countable {
                        measured += 1;
                        latencies.push((now - at) as f64);
                    }
                    pending.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    Reference {
        samples: latencies.samples().to_vec(),
        instant,
        measured,
        mispredicted: client.prediction_stats().mispredicted,
        write_delays: server.write_delays().to_vec(),
        sender_stats: *server.sender_stats(),
    }
}

/// The seed's replay_ssh, verbatim.
fn reference_ssh(trace: &UserTrace, cfg: &ReplayConfig) -> Reference {
    let (keys, apps) = flatten(trace);
    let targets = dry_run_targets(&keys, &apps);
    let c_addr = Addr::new(1, 5001);
    let s_addr = Addr::new(2, 22);
    let mut net = Network::new(cfg.up.clone(), cfg.down.clone(), cfg.seed);
    net.register(c_addr, Side::Client);
    net.register(s_addr, Side::Server);

    let mut client = SshClient::new(c_addr, s_addr, 80, 24);
    let mut server = SshServer::new(s_addr, c_addr, Box::new(WorkloadApp::new(apps)));

    let mut latencies = Latencies::new();
    let mut measured = 0u64;
    let mut pending: VecDeque<(u64, Millis)> = VecDeque::new();

    let end = keys.last().map(|k| k.0).unwrap_or(0) + 130_000;
    let mut next_key = 0usize;
    let mut now: Millis = 0;
    while now < end {
        while next_key < keys.len() && keys[next_key].0 <= now {
            let (_, bytes, count_it) = &keys[next_key];
            client.keystroke(now, bytes);
            if *count_it && targets[next_key] != 0 {
                pending.push_back((targets[next_key], now));
            }
            next_key += 1;
        }
        for (to, w) in client.tick(now) {
            net.send(c_addr, to, w);
        }
        for (to, w) in server.tick(now) {
            net.send(s_addr, to, w);
        }
        now += 1;
        net.advance_to(now);
        while let Some(dg) = net.recv(s_addr) {
            server.receive(now, &dg.payload);
        }
        let mut got_any = false;
        while let Some(dg) = net.recv(c_addr) {
            client.receive(now, &dg.payload);
            got_any = true;
        }
        if got_any {
            let rendered = client.rendered_bytes();
            while let Some(&(target, at)) = pending.front() {
                if rendered >= target {
                    measured += 1;
                    latencies.push((now - at) as f64);
                    pending.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    Reference {
        samples: latencies.samples().to_vec(),
        instant: 0,
        measured,
        mispredicted: 0,
        write_delays: Vec::new(),
        sender_stats: mosh_ssp::sender::SenderStats::default(),
    }
}

fn configs() -> Vec<(&'static str, ReplayConfig)> {
    let mut netem = ReplayConfig::over(LinkConfig::netem_lossy(), LinkConfig::netem_lossy());
    netem.preference = DisplayPreference::Never;
    vec![
        (
            "evdo",
            ReplayConfig::over(LinkConfig::evdo_uplink(), LinkConfig::evdo_downlink()),
        ),
        ("netem_lossy", netem),
        (
            "singapore",
            ReplayConfig::over(LinkConfig::singapore(), LinkConfig::singapore()),
        ),
    ]
}

#[test]
fn mosh_replay_matches_the_1ms_reference_exactly() {
    let trace = small_trace(120);
    for (name, cfg) in configs() {
        let reference = reference_mosh(&trace, &cfg);
        let ported = replay_mosh(&trace, &cfg);
        assert_eq!(
            reference.samples,
            ported.latencies.samples(),
            "{name}: latency sample streams diverged"
        );
        assert_eq!(reference.instant, ported.instant, "{name}: instant");
        assert_eq!(reference.measured, ported.measured, "{name}: measured");
        assert_eq!(
            reference.mispredicted, ported.mispredicted,
            "{name}: mispredicted"
        );
        assert_eq!(
            reference.write_delays, ported.write_delays,
            "{name}: write delays (Figure 3 inputs)"
        );
        assert_eq!(
            reference.sender_stats, ported.sender_stats,
            "{name}: sender counters (ablation inputs)"
        );
        assert!(
            reference.measured > 100,
            "{name}: enough keystrokes measured"
        );
    }
}

#[test]
fn ssh_replay_matches_the_1ms_reference_exactly() {
    let trace = small_trace(120);
    for (name, cfg) in configs() {
        let reference = reference_ssh(&trace, &cfg);
        let ported = replay_ssh(&trace, &cfg);
        assert_eq!(
            reference.samples,
            ported.latencies.samples(),
            "{name}: latency sample streams diverged"
        );
        assert_eq!(reference.measured, ported.measured, "{name}: measured");
        assert!(
            reference.measured > 100,
            "{name}: enough keystrokes measured"
        );
    }
}
