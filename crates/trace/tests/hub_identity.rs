//! Batch replay on one hub == dedicated replay per user.
//!
//! `replay_mosh_many`/`replay_ssh_many` drive every user of a batch as
//! one session of a single `ServerHub`. Multiplexing must be invisible:
//! the outcome of a user inside any batch must equal the outcome of
//! replaying that user alone (which `schedule_identity.rs` in turn pins
//! to the historical 1 ms pump). Together the two suites give the full
//! chain: hub batch == dedicated loop == 1 ms reference, sample for
//! sample.

use mosh_net::LinkConfig;
use mosh_trace::{
    replay_mosh, replay_mosh_many, replay_ssh, replay_ssh_many, small_trace, ReplayConfig,
    ReplayOutcome, UserTrace,
};

fn traces() -> Vec<UserTrace> {
    // Different lengths → users finish their scripts at different times,
    // exercising the hub's park-finished-sessions path.
    vec![small_trace(60), small_trace(90), small_trace(40)]
}

fn assert_outcomes_equal(sys: &str, batch: &[ReplayOutcome], solo: &[ReplayOutcome]) {
    assert_eq!(batch.len(), solo.len());
    for (i, (b, s)) in batch.iter().zip(solo.iter()).enumerate() {
        assert_eq!(
            b.latencies.samples(),
            s.latencies.samples(),
            "{sys} user {i}: latency sample streams diverged under the hub"
        );
        assert_eq!(b.instant, s.instant, "{sys} user {i}: instant");
        assert_eq!(b.measured, s.measured, "{sys} user {i}: measured");
        assert_eq!(
            b.mispredicted, s.mispredicted,
            "{sys} user {i}: mispredicted"
        );
        assert_eq!(
            b.write_delays, s.write_delays,
            "{sys} user {i}: write delays (Figure 3 inputs)"
        );
        assert_eq!(
            b.sender_stats, s.sender_stats,
            "{sys} user {i}: sender counters (ablation inputs)"
        );
        assert!(
            b.measured > 20,
            "{sys} user {i}: enough keystrokes measured"
        );
    }
}

#[test]
fn mosh_batch_replay_equals_dedicated_replays() {
    let traces = traces();
    let cfg = ReplayConfig::over(LinkConfig::evdo_uplink(), LinkConfig::evdo_downlink());
    let batch = replay_mosh_many(&traces, &cfg);
    let solo: Vec<_> = traces.iter().map(|t| replay_mosh(t, &cfg)).collect();
    assert_outcomes_equal("mosh", &batch, &solo);
}

#[test]
fn ssh_batch_replay_equals_dedicated_replays() {
    let traces = traces();
    let cfg = ReplayConfig::over(LinkConfig::netem_lossy(), LinkConfig::netem_lossy());
    let batch = replay_ssh_many(&traces, &cfg);
    let solo: Vec<_> = traces.iter().map(|t| replay_ssh(t, &cfg)).collect();
    assert_outcomes_equal("ssh", &batch, &solo);
}

#[test]
fn threaded_replay_equals_single_threaded_sample_for_sample() {
    // The parallel-replay knob: the same batch over 1, 2, and 3 hub
    // shards must produce identical per-user outcomes — each user is a
    // private world, and the sharded hub is byte-identical to the
    // single-threaded one, so threads buy wall clock and nothing else.
    let traces = traces();
    let mut cfg = ReplayConfig::over(LinkConfig::evdo_uplink(), LinkConfig::evdo_downlink());
    let solo_threaded = replay_mosh_many(&traces, &cfg);
    for threads in [2usize, 3] {
        cfg.threads = threads;
        let sharded = replay_mosh_many(&traces, &cfg);
        assert_outcomes_equal(&format!("mosh x{threads}"), &sharded, &solo_threaded);
        let sharded_ssh = replay_ssh_many(&traces, &cfg);
        cfg.threads = 1;
        let solo_ssh = replay_ssh_many(&traces, &cfg);
        assert_outcomes_equal(&format!("ssh x{threads}"), &sharded_ssh, &solo_ssh);
    }
}

#[test]
fn bulk_download_batch_still_matches() {
    let traces = vec![small_trace(25), small_trace(30)];
    let mut cfg = ReplayConfig::over(LinkConfig::lte_uplink(), LinkConfig::lte_downlink());
    cfg.bulk_download = true;
    let batch = replay_mosh_many(&traces, &cfg);
    let solo: Vec<_> = traces.iter().map(|t| replay_mosh(t, &cfg)).collect();
    assert_eq!(batch.len(), 2);
    for (i, (b, s)) in batch.iter().zip(solo.iter()).enumerate() {
        assert_eq!(
            b.latencies.samples(),
            s.latencies.samples(),
            "bulk user {i} diverged"
        );
    }
}
