//! Mosh sessions: the client and server endpoints, and the applications
//! the server hosts.
//!
//! This crate ties the substrates together into the system of the paper:
//!
//! * [`client::MoshClient`] — sends every keystroke through SSP, overlays
//!   speculative echoes on the newest server frame (§3).
//! * [`server::MoshServer`] — hosts an [`apps::Application`], owns the
//!   authoritative terminal, maintains the 50 ms echo ack (§3.2), and
//!   re-targets roaming clients (§2.2).
//! * [`apps`] — deterministic models of the application classes in the
//!   paper's traces: shell, full-screen editor, pager, mail reader, and a
//!   runaway flood for the Control-C experiment.
//! * [`session`] — the event-driven per-session machinery: the
//!   [`session::SessionDriver`] mechanics and the single-session
//!   [`session::SessionLoop`] driver, stepping endpoints over a
//!   `mosh_net::Channel` substrate (simulator or live UDP) by
//!   `min(next_wakeup, next_event_time)` and yielding typed
//!   [`session::SessionEvent`]s.
//! * [`hub`] — the multi-session server runtime, in two layers:
//!   [`hub::ServerHub`] drives any number of sessions behind one
//!   `mosh_net::Poller` with a timer wheel of per-session wakeups,
//!   demultiplexing datagrams by address and falling back to
//!   cryptographic authentication when roaming makes addresses collide
//!   (§2.2); [`hub::ShardedHub`] spreads those hubs across worker
//!   threads — one private shard per core, sessions assigned at accept
//!   time, byte-identical per-session behavior at every shard count.
//!
//! Endpoints are I/O-free: `tick(now)` returns addressed datagrams and
//! `receive(now, ...)` consumes them, under any transport — the
//! discrete-event emulator in tests and benchmarks, or a real UDP socket.

pub mod apps;
pub mod client;
pub mod hub;
pub mod server;
pub mod session;

pub use apps::{Application, Editor, LineShell, MailReader, Pager, TimedWrite};
pub use client::MoshClient;
pub use hub::{
    CheckpointStore, HubSession, HubStats, ServerHub, SessionId, ShardLoad, ShardedHub,
    SnapshotError,
};
pub use server::MoshServer;
pub use session::{Endpoint, Party, SessionDriver, SessionEvent, SessionLoop};

/// Virtual time in milliseconds.
pub type Millis = u64;
