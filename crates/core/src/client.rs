//! The Mosh client: input capture, prediction, and display composition.
//!
//! The client sends every keystroke to the server through SSP (nothing may
//! be skipped in that direction), keeps the newest server screen state it
//! has received, and overlays the prediction engine's speculative echoes
//! on top for display (paper §3).

use crate::Millis;
use mosh_crypto::session::Direction;
use mosh_crypto::Base64Key;
use mosh_net::Addr;
use mosh_prediction::{DisplayPreference, PredictionEngine, PredictionStats};
use mosh_ssp::datagram::Opened;
use mosh_ssp::transport::{ReceiveEvent, Transport};
use mosh_states::{CompleteTerminal, UserStream};
use mosh_terminal::Framebuffer;

/// The client half of a Mosh session.
///
/// The authoritative input history lives *inside* the transport's sender
/// (its current state), mutated in place per keystroke — there is no
/// second copy cloned into the sender per event, and acknowledged
/// history is pruned where it lives.
pub struct MoshClient {
    transport: Transport<UserStream, CompleteTerminal>,
    prediction: PredictionEngine,
    server_addr: Addr,
    /// Numbers of remote states already reported to the predictor.
    last_remote_num: u64,
}

impl MoshClient {
    /// Creates a client that will talk to `server_addr`.
    ///
    /// `width`/`height` is the local window size; if it differs from the
    /// conventional 80×24 initial state, a resize event is queued
    /// immediately (the server follows).
    pub fn new(
        key: Base64Key,
        server_addr: Addr,
        width: usize,
        height: usize,
        preference: DisplayPreference,
    ) -> Self {
        // Mosh clients always announce their window size immediately; this
        // doubles as the hello datagram that teaches the server the
        // client's address.
        let mut transport = Transport::new(
            key,
            Direction::ToServer,
            UserStream::new(),
            CompleteTerminal::initial(),
        );
        transport
            .current_state_mut()
            .push_resize(width as u16, height as u16);
        transport.commit_current(0);
        MoshClient {
            transport,
            prediction: PredictionEngine::new(preference),
            server_addr,
            last_remote_num: 0,
        }
    }

    /// The address this client sends to.
    pub fn server_addr(&self) -> Addr {
        self.server_addr
    }

    /// Points the client at a different server address — the same
    /// session, reached another way (e.g. the server's IPv6 address
    /// after the client rebinds onto an IPv6 socket). The crypto session
    /// is untouched; only the destination of future datagrams changes.
    pub fn retarget(&mut self, server_addr: Addr) {
        self.server_addr = server_addr;
    }

    /// True when `wire` authenticates under this session's key, without
    /// consuming it (multi-session demultiplexing; paper §2.2).
    pub fn authenticates(&self, wire: &[u8]) -> bool {
        self.transport.authenticates(wire)
    }

    /// Authenticates and decrypts `wire` without consuming it, returning
    /// the opened-datagram token on success — the decrypt-once demux
    /// probe. Consume the token with [`MoshClient::receive_opened`].
    pub fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        self.transport.open(wire).ok()
    }

    /// [`MoshClient::try_open`] over a whole drained batch in one cipher
    /// pass, appending one verdict per wire to `out` (strictly per
    /// wire: a bad packet never affects its batch siblings).
    pub fn try_open_many(&mut self, wires: &[&[u8]], out: &mut Vec<Option<Opened>>) {
        out.extend(self.transport.open_many(wires).into_iter().map(Result::ok));
    }

    /// Number of OCB open attempts this endpoint has performed
    /// (decrypt-once instrumentation).
    pub fn decrypt_count(&self) -> u64 {
        self.transport.decrypt_count()
    }

    /// Wire counters (sent/accepted/rejected datagrams).
    pub fn transport_stats(&self) -> &mosh_ssp::transport::TransportStats {
        self.transport.stats()
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> f64 {
        self.transport.srtt()
    }

    /// Prediction counters (the 70%-instant / 0.9%-misprediction numbers).
    pub fn prediction_stats(&self) -> &PredictionStats {
        self.prediction.stats()
    }

    /// Time the server was last heard from.
    pub fn last_heard(&self) -> Option<Millis> {
        self.transport.last_heard()
    }

    /// Total keystrokes entered so far (user-stream event index space).
    /// Indices are global, so pruning acknowledged history never shifts
    /// them.
    pub fn input_end_index(&self) -> u64 {
        self.transport.current_state().end_index()
    }

    /// Echo-ack index of the newest *applied* server frame.
    pub fn echo_ack(&self) -> u64 {
        self.transport.remote_state().echo_ack()
    }

    /// Number of the newest server state received (frame counter).
    pub fn remote_state_num(&self) -> u64 {
        self.transport.remote_state_num()
    }

    /// Types one keystroke at `now`. Returns true when the keystroke's
    /// effect was displayed speculatively, before any server round trip
    /// (the paper's "instant" outcome).
    pub fn keystroke(&mut self, now: Millis, bytes: &[u8]) -> bool {
        // The input history is mutated where the sender keeps it — no
        // whole-stream clone per keystroke.
        self.transport.current_state_mut().push_keystroke(bytes);
        self.transport.commit_current(now);
        // Split borrows: the predictor reads the latest frame in place —
        // no per-keystroke framebuffer clone.
        let Self {
            transport,
            prediction,
            ..
        } = self;
        prediction.new_user_input(
            now,
            transport.srtt(),
            bytes,
            transport.remote_state().frame(),
            transport.current_state().end_index(),
        )
    }

    /// Notifies the server of a window-size change.
    pub fn resize(&mut self, now: Millis, width: usize, height: usize) {
        self.transport
            .current_state_mut()
            .push_resize(width as u16, height as u16);
        self.transport.commit_current(now);
    }

    /// Handles one wire datagram at `now`.
    pub fn receive(&mut self, now: Millis, wire: &[u8]) {
        let Ok(event) = self.transport.receive(now, wire) else {
            return;
        };
        self.after_receive(now, event);
    }

    /// Handles an already-opened datagram at `now` (the decrypt-once
    /// path): same behavior as [`MoshClient::receive`] of the original
    /// wire, without a second OCB pass.
    pub fn receive_opened(&mut self, now: Millis, opened: Opened) {
        let Ok(event) = self.transport.recv_opened(now, opened) else {
            return;
        };
        self.after_receive(now, event);
    }

    fn after_receive(&mut self, now: Millis, event: ReceiveEvent) {
        if event.remote_advanced && self.transport.remote_state_num() != self.last_remote_num {
            self.last_remote_num = self.transport.remote_state_num();
            // Split borrows: the predictor reads the new frame in place —
            // no per-frame framebuffer clone.
            let Self {
                transport,
                prediction,
                ..
            } = self;
            let remote = transport.remote_state();
            prediction.report_frame(now, remote.frame(), remote.echo_ack(), transport.srtt());
        }
    }

    /// Runs timers; returns datagrams addressed to the server.
    pub fn tick(&mut self, now: Millis) -> Vec<(Addr, Vec<u8>)> {
        self.transport
            .tick(now)
            .into_iter()
            .map(|w| (self.server_addr, w))
            .collect()
    }

    /// The earliest time `tick` needs to run again. Purely
    /// transport-driven (collection interval, frame gate, delayed acks,
    /// heartbeats): with nothing scheduled the client sleeps until a
    /// receive or a keystroke re-arms it — no polling floor.
    pub fn next_wakeup(&self, now: Millis) -> Millis {
        self.transport.next_wakeup().unwrap_or(Millis::MAX).max(now)
    }

    /// The latest authoritative server screen, without predictions.
    pub fn server_frame(&self) -> &Framebuffer {
        self.transport.remote_state().frame()
    }

    /// The screen as shown to the user: the newest server state with the
    /// prediction overlays applied.
    pub fn display(&self) -> Framebuffer {
        let mut frame = self.transport.remote_state().frame().clone();
        self.prediction.apply(&mut frame);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;
    use crate::server::MoshServer;
    use crate::session::{Party, SessionLoop};
    use mosh_net::{LinkConfig, Network, Side, SimChannel};

    fn key() -> Base64Key {
        Base64Key::from_bytes([2u8; 16])
    }

    struct Pair {
        sl: SessionLoop<SimChannel>,
        client: MoshClient,
        server: MoshServer,
        c_addr: Addr,
        s_addr: Addr,
    }

    fn session(up: LinkConfig, down: LinkConfig, pref: DisplayPreference) -> Pair {
        let mut net = Network::new(up, down, 11);
        let c_addr = Addr::new(1, 1000);
        let s_addr = Addr::new(2, 60001);
        net.register(c_addr, Side::Client);
        net.register(s_addr, Side::Server);
        Pair {
            sl: SessionLoop::new(SimChannel::new(net)),
            client: MoshClient::new(key(), s_addr, 80, 24, pref),
            server: MoshServer::new(key(), Box::new(LineShell::new())),
            c_addr,
            s_addr,
        }
    }

    impl Pair {
        fn now(&self) -> Millis {
            self.sl.now()
        }
    }

    fn run(p: &mut Pair, until: Millis) {
        p.sl.pump_until(
            &mut [
                Party::new(p.c_addr, &mut p.client),
                Party::new(p.s_addr, &mut p.server),
            ],
            until,
        );
    }

    #[test]
    fn end_to_end_prompt_and_echo() {
        let mut p = session(
            LinkConfig::lan(),
            LinkConfig::lan(),
            DisplayPreference::Never,
        );
        // The hello datagram teaches the server the client's address; the
        // prompt arrives without the user typing anything.
        run(&mut p, 300);
        assert_eq!(p.client.server_frame().row_text(0), "$");
        p.client.keystroke(p.now(), b"l");
        let t = p.now() + 200;
        run(&mut p, t);
        assert_eq!(p.client.server_frame().row_text(0), "$ l");
        p.client.keystroke(p.now(), b"s");
        p.client.keystroke(p.now(), b"\r");
        run(&mut p, 1500);
        let text = p.client.server_frame().to_text();
        assert!(text.contains("Makefile"), "ls output arrived: {text}");
    }

    #[test]
    fn predictions_display_instantly_on_slow_links() {
        let up = LinkConfig {
            delay_ms: 250,
            ..LinkConfig::lan()
        };
        let down = up.clone();
        let mut p = session(up, down, DisplayPreference::Adaptive);
        // Wait for the prompt like a real user, then type one keystroke to
        // train SRTT and confirm the first epoch.
        run(&mut p, 1500);
        assert_eq!(p.client.server_frame().row_text(0), "$");
        p.client.keystroke(p.now(), b"e");
        let t = p.now() + 2000;
        run(&mut p, t);
        assert_eq!(p.client.server_frame().row_text(0), "$ e");

        // Now type: the echo must appear immediately in the display,
        // long before the server round trip.
        let shown = p.client.keystroke(p.now(), b"c");
        assert!(shown, "prediction must display instantly");
        let display = p.client.display();
        assert_eq!(display.row_text(0), "$ ec");
        // The authoritative frame has NOT caught up yet.
        assert_eq!(p.client.server_frame().row_text(0), "$ e");

        // And the server eventually confirms.
        let t = p.now() + 2000;
        run(&mut p, t);
        assert_eq!(p.client.server_frame().row_text(0), "$ ec");
        assert_eq!(p.client.prediction_stats().mispredicted, 0);
    }

    #[test]
    fn mispredictions_repair_within_a_round_trip() {
        let up = LinkConfig {
            delay_ms: 150,
            ..LinkConfig::lan()
        };
        let down = up.clone();
        let mut p = session(up, down, DisplayPreference::Adaptive);
        // Train the predictor on echoing input.
        run(&mut p, 1000);
        for k in [b"a", b"b"] {
            p.client.keystroke(p.now(), k);
            let t = p.now() + 700;
            run(&mut p, t);
        }
        assert_eq!(p.client.server_frame().row_text(0), "$ ab");
        assert!(p.client.prediction_stats().confirmed > 0);

        // Delete past the start of the line: the extra backspaces predict
        // cursor motion the shell will not echo.
        for _ in 0..4 {
            p.client.keystroke(p.now(), b"\x7f");
            let t = p.now() + 30;
            run(&mut p, t);
        }
        let t = p.now() + 3000;
        run(&mut p, t);
        // The wrong overlays were repaired: display matches the server.
        assert_eq!(
            p.client.display().row_text(0),
            p.client.server_frame().row_text(0)
        );
        assert_eq!(p.client.display().cursor, p.client.server_frame().cursor);
        assert!(p.client.prediction_stats().mispredicted > 0);
    }

    #[test]
    fn client_roams_mid_session() {
        let mut p = session(
            LinkConfig::lan(),
            LinkConfig::lan(),
            DisplayPreference::Never,
        );
        p.client.keystroke(0, b"a");
        run(&mut p, 500);
        assert_eq!(p.server.target(), Some(p.c_addr));

        // The client's address changes (new network); nothing re-connects.
        let new_addr = Addr::new(99, 4321);
        p.sl.channel_mut()
            .network_mut()
            .register(new_addr, Side::Client);
        p.c_addr = new_addr;
        p.client.keystroke(p.now(), b"b");
        let t = p.now() + 1000;
        run(&mut p, t);
        assert_eq!(p.server.target(), Some(new_addr), "server re-targeted");
        assert_eq!(p.client.server_frame().row_text(0), "$ ab");
    }

    #[test]
    fn display_without_predictions_equals_server_frame() {
        let mut p = session(
            LinkConfig::lan(),
            LinkConfig::lan(),
            DisplayPreference::Never,
        );
        p.client.keystroke(0, b"x");
        run(&mut p, 500);
        assert_eq!(&p.client.display(), p.client.server_frame());
    }

    #[test]
    fn resize_propagates_to_server() {
        let mut p = session(
            LinkConfig::lan(),
            LinkConfig::lan(),
            DisplayPreference::Never,
        );
        p.client.keystroke(0, b"a");
        run(&mut p, 300);
        p.client.resize(p.now(), 120, 40);
        let t = p.now() + 500;
        run(&mut p, t);
        assert_eq!(p.server.frame().width(), 120);
        assert_eq!(p.client.server_frame().width(), 120);
    }
}
