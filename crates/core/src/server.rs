//! The Mosh server: terminal host, echo-ack bookkeeping, and roaming.
//!
//! The server owns the **authoritative** terminal state (paper §3): it
//! applies user keystrokes to the hosted application, applies the
//! application's writes to the emulator, and lets SSP synchronize the
//! resulting frames back to the client. Two pieces of paper machinery live
//! here:
//!
//! * **Echo ack (§3.2)** — a keystroke that has been presented to the
//!   application for at least [`ECHO_TIMEOUT`] is acknowledged in the
//!   synchronized state, so the client can judge its predictions without
//!   any client-side timeout (jitter-immune).
//! * **Roaming (§2.2)** — "every time the server receives an authentic
//!   datagram from the client with a sequence number greater than any
//!   before, it sets the packet's source IP address and UDP port number as
//!   its new target."

use crate::apps::{Application, TimedWrite};
use crate::Millis;
use mosh_crypto::session::Direction;
use mosh_crypto::Base64Key;
use mosh_net::Addr;
use mosh_ssp::datagram::Opened;
use mosh_ssp::transport::{ReceiveEvent, Transport};
use mosh_states::{CompleteTerminal, UserEvent, UserStream};
use std::collections::VecDeque;

/// Server-side echo acknowledgment timeout: "chosen to contain the vast
/// majority of legitimate application echoes on loaded servers, while
/// still fast enough to rapidly detect mistaken predictions" (§3.2).
pub const ECHO_TIMEOUT: Millis = 50;

/// The server half of a Mosh session.
///
/// The authoritative terminal lives *inside* the transport's sender (its
/// current state), mutated in place as writes apply — there is no second
/// terminal copy cloned into the sender per frame; the only snapshots
/// taken are the sender's retained diff sources, one per state actually
/// shipped.
pub struct MoshServer {
    transport: Transport<CompleteTerminal, UserStream>,
    app: Box<dyn Application>,
    /// True when the terminal changed since the last commit to the
    /// sender's collection clock.
    dirty: bool,
    /// Next user-stream event index to apply.
    applied_through: u64,
    /// Keystrokes applied but not yet echo-acked: (index+1, applied_at).
    echo_queue: VecDeque<(u64, Millis)>,
    /// Application writes not yet due.
    pending_writes: VecDeque<TimedWrite>,
    /// Where to send packets: the source of the newest authentic datagram.
    target: Option<Addr>,
    started: bool,
    /// Instrumentation for Figure 3: (write arrival time, shipped time).
    write_delays: Vec<(Millis, Millis)>,
    /// Writes applied to the terminal but not yet shipped in a frame.
    unshipped_writes: Vec<Millis>,
}

impl MoshServer {
    /// Creates a server hosting `app`, keyed for one client.
    pub fn new(key: Base64Key, app: Box<dyn Application>) -> Self {
        MoshServer {
            transport: Transport::new(
                key,
                Direction::ToClient,
                CompleteTerminal::initial(),
                UserStream::new(),
            ),
            app,
            dirty: false,
            applied_through: 0,
            echo_queue: VecDeque::new(),
            pending_writes: VecDeque::new(),
            target: None,
            started: false,
            write_delays: Vec::new(),
            unshipped_writes: Vec::new(),
        }
    }

    /// Overrides the collection interval (Figure 3's sweep).
    pub fn set_mindelay(&mut self, mindelay: Millis) {
        self.transport.set_mindelay(mindelay);
    }

    /// The authoritative screen (for tests and the Control-C experiment).
    pub fn frame(&self) -> &mosh_terminal::Framebuffer {
        self.transport.current_state().frame()
    }

    /// Smoothed RTT as the server sees it.
    pub fn srtt(&self) -> f64 {
        self.transport.srtt()
    }

    /// The address the server currently replies to.
    pub fn target(&self) -> Option<Addr> {
        self.target
    }

    /// Per-write protocol-induced delays `(arrived, shipped)` recorded so
    /// far — the quantity Figure 3 averages.
    pub fn write_delays(&self) -> &[(Millis, Millis)] {
        &self.write_delays
    }

    /// Sender statistics (piggyback/heartbeat counters for the ablations).
    pub fn sender_stats(&self) -> &mosh_ssp::sender::SenderStats {
        self.transport.sender_stats()
    }

    /// True when `wire` authenticates under this session's key, without
    /// consuming it. A multi-session hub uses this to demultiplex
    /// datagrams whose source address is ambiguous (two roaming clients
    /// behind one NAT address, paper §2.2) — authentication, never the
    /// address, decides session identity.
    pub fn authenticates(&self, wire: &[u8]) -> bool {
        self.transport.authenticates(wire)
    }

    /// Authenticates and decrypts `wire` without consuming it, returning
    /// the opened-datagram token on success — the decrypt-once demux
    /// probe. Consume the token with [`MoshServer::receive_opened`].
    pub fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        self.transport.open(wire).ok()
    }

    /// [`MoshServer::try_open`] over a whole drained batch in one cipher
    /// pass, appending one verdict per wire to `out` (strictly per
    /// wire: a bad packet never affects its batch siblings).
    pub fn try_open_many(&mut self, wires: &[&[u8]], out: &mut Vec<Option<Opened>>) {
        out.extend(self.transport.open_many(wires).into_iter().map(Result::ok));
    }

    /// Number of OCB open attempts this endpoint has performed
    /// (decrypt-once instrumentation).
    pub fn decrypt_count(&self) -> u64 {
        self.transport.decrypt_count()
    }

    /// Wire counters (sent/accepted/rejected datagrams).
    pub fn transport_stats(&self) -> &mosh_ssp::transport::TransportStats {
        self.transport.stats()
    }

    fn schedule_writes(&mut self, writes: Vec<TimedWrite>) {
        Self::schedule_into(&mut self.pending_writes, writes);
    }

    /// Queues writes ordered by due time (stable for equal times); an
    /// associated fn so callers holding other field borrows can use it.
    fn schedule_into(pending_writes: &mut VecDeque<TimedWrite>, writes: Vec<TimedWrite>) {
        for w in writes {
            let pos = pending_writes
                .iter()
                .position(|p| p.at > w.at)
                .unwrap_or(pending_writes.len());
            pending_writes.insert(pos, w);
        }
    }

    /// Handles one wire datagram from `from`, arriving at `now`.
    pub fn receive(&mut self, now: Millis, from: Addr, wire: &[u8]) {
        let Ok(event) = self.transport.receive(now, wire) else {
            return; // Inauthentic datagrams are line noise.
        };
        self.after_receive(now, from, event);
    }

    /// Handles an already-opened datagram from `from` at `now` (the
    /// decrypt-once path): same behavior as [`MoshServer::receive`] of
    /// the original wire, without a second OCB pass.
    pub fn receive_opened(&mut self, now: Millis, from: Addr, opened: Opened) {
        let Ok(event) = self.transport.recv_opened(now, opened) else {
            return;
        };
        self.after_receive(now, from, event);
    }

    fn after_receive(&mut self, now: Millis, from: Addr, event: ReceiveEvent) {
        if event.new_high_seq {
            // Roaming: re-target to the newest authentic source address.
            self.target = Some(from);
        }
        if !event.remote_advanced {
            return;
        }
        // Apply newly arrived user events to the application/terminal.
        // Split borrows twice over: the remote user stream is iterated in
        // place (it holds every event of the session, so cloning it per
        // datagram would cost ever more as the session ages), and the
        // terminal is the transport's own current state, mutated in place
        // alongside it.
        let Self {
            transport,
            app,
            dirty,
            applied_through,
            echo_queue,
            pending_writes,
            ..
        } = self;
        let (terminal, remote) = transport.split_states();
        for (idx, ev) in remote.events_from(*applied_through) {
            match ev {
                UserEvent::Keystroke(bytes) => {
                    let writes = app.on_input(now, bytes);
                    Self::schedule_into(pending_writes, writes);
                }
                UserEvent::Resize { width, height } => {
                    terminal.resize(*width as usize, *height as usize);
                    *dirty = true;
                    let writes = app.on_resize(now, *width as usize, *height as usize);
                    Self::schedule_into(pending_writes, writes);
                }
            }
            echo_queue.push_back((idx + 1, now));
            *applied_through = idx + 1;
        }
    }

    /// Runs timers at `now`; returns datagrams to send to [`Self::target`].
    pub fn tick(&mut self, now: Millis) -> Vec<(Addr, Vec<u8>)> {
        if !self.started {
            self.started = true;
            let writes = self.app.start(now);
            self.schedule_writes(writes);
        }
        // Spontaneous application output (floods).
        let polled = self.app.poll(now);
        self.schedule_writes(polled);

        // Apply due writes to the authoritative terminal (the sender's
        // current state, mutated in place).
        while let Some(w) = self.pending_writes.front() {
            if w.at > now {
                break;
            }
            let w = self.pending_writes.pop_front().expect("peeked");
            self.transport.current_state_mut().act(&w.bytes);
            self.unshipped_writes.push(w.at.max(now));
            self.dirty = true;
        }

        // Terminal replies (DA/DSR) feed back into the application.
        let answerback = self.transport.current_state_mut().take_answerback();
        if !answerback.is_empty() {
            let writes = self.app.on_input(now, &answerback);
            self.schedule_writes(writes);
        }

        // Echo ack: keystrokes presented >= 50 ms ago (or already echoed —
        // subsumed: the 50 ms timeout covers both cases conservatively).
        let mut new_ack = None;
        while let Some(&(idx, at)) = self.echo_queue.front() {
            if now >= at + ECHO_TIMEOUT {
                new_ack = Some(idx);
                self.echo_queue.pop_front();
            } else {
                break;
            }
        }
        if let Some(ack) = new_ack {
            if ack > self.transport.current_state().echo_ack() {
                self.transport.current_state_mut().set_echo_ack(ack);
                self.dirty = true;
            }
        }

        if self.dirty {
            self.transport.commit_current(now);
            self.dirty = false;
        }

        // Until a client datagram arrives there is nowhere to send; running
        // the sender would record states as shipped when they never left.
        if self.target.is_none() {
            return Vec::new();
        }
        let wires = self.transport.tick(now);
        if !wires.is_empty() && !self.transport.pending_data() {
            // The frame just sent covers every write applied so far (a
            // pure ack/heartbeat would leave pending_data true).
            for arrived in self.unshipped_writes.drain(..) {
                self.write_delays.push((arrived, now));
            }
        }
        let target = self.target.expect("checked above");
        wires.into_iter().map(|w| (target, w)).collect()
    }

    /// The earliest time `tick` needs to run again (event-driven stepping).
    ///
    /// Purely schedule-driven: the application's own wakeup, the pending
    /// write queue, the echo-ack timer, and the transport's timers. There
    /// is no polling floor — `Application::next_wakeup`'s contract is that
    /// `None` means no spontaneous output until input re-arms it, so a
    /// quiet session sleeps until its next real deadline instead of
    /// burning a wakeup every 50 ms.
    pub fn next_wakeup(&self, now: Millis) -> Millis {
        let mut next = Millis::MAX;
        if let Some(t) = self.app.next_wakeup(now) {
            next = next.min(t);
        }
        if let Some(w) = self.pending_writes.front() {
            next = next.min(w.at);
        }
        if let Some(&(_, at)) = self.echo_queue.front() {
            next = next.min(at + ECHO_TIMEOUT);
        }
        if let Some(t) = self.transport.next_wakeup() {
            next = next.min(t);
        }
        next.max(now)
    }

    /// Time the client was last heard from.
    pub fn last_heard(&self) -> Option<Millis> {
        self.transport.last_heard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;

    fn key() -> Base64Key {
        Base64Key::from_bytes([8u8; 16])
    }

    /// A minimal fake client transport for driving the server.
    fn client_transport() -> Transport<UserStream, CompleteTerminal> {
        Transport::new(
            key(),
            Direction::ToServer,
            UserStream::new(),
            CompleteTerminal::initial(),
        )
    }

    fn client_addr() -> Addr {
        Addr::new(1, 999)
    }

    /// Ships current client input to the server directly.
    fn pump(
        client: &mut Transport<UserStream, CompleteTerminal>,
        server: &mut MoshServer,
        now: Millis,
    ) {
        for w in client.tick(now) {
            server.receive(now, client_addr(), &w);
        }
    }

    #[test]
    fn server_applies_keystrokes_to_app_and_terminal() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0); // start: prompt appears
        server.tick(1);
        assert_eq!(server.frame().row_text(0), "$");

        let mut input = UserStream::new();
        input.push_keystroke(b"l");
        input.push_keystroke(b"s");
        client.set_current_state(input, 10);
        pump(&mut client, &mut server, 20);
        // Echo delay is 2 ms; run the server forward.
        for t in 21..30 {
            server.tick(t);
        }
        assert_eq!(server.frame().row_text(0), "$ ls");
    }

    #[test]
    fn echo_ack_advances_after_50ms() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_keystroke(b"x");
        client.set_current_state(input, 10);
        pump(&mut client, &mut server, 20);
        server.tick(21);
        // Before the timeout the ack is still 0 in the authoritative state.
        server.tick(69);
        assert_eq!(server.transport.current_state().echo_ack(), 0);
        server.tick(70); // 20 + 50
        assert_eq!(server.transport.current_state().echo_ack(), 1);
    }

    #[test]
    fn resize_events_resize_the_terminal() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_resize(100, 30);
        client.set_current_state(input, 5);
        pump(&mut client, &mut server, 20);
        server.tick(21);
        assert_eq!(server.frame().width(), 100);
        assert_eq!(server.frame().height(), 30);
    }

    #[test]
    fn roaming_retargets_to_newest_source() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_keystroke(b"a");
        client.set_current_state(input.clone(), 0);
        let w1 = client.tick(10);
        server.receive(11, Addr::new(1, 1000), &w1[0]);
        assert_eq!(server.target(), Some(Addr::new(1, 1000)));

        // The client roams: same session, new address.
        input.push_keystroke(b"b");
        client.set_current_state(input, 100);
        let w2 = client.tick(400);
        server.receive(401, Addr::new(7, 7777), &w2[0]);
        assert_eq!(server.target(), Some(Addr::new(7, 7777)), "roamed");

        // A stale reordered packet from the old address does not regress.
        server.receive(402, Addr::new(1, 1000), &w1[0]);
        assert_eq!(server.target(), Some(Addr::new(7, 7777)));
    }

    #[test]
    fn server_syncs_screen_back_to_client() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        // Tell the server where the client is (any authentic datagram).
        client.set_current_state(UserStream::new(), 0);
        for now in 0..6000 {
            for w in client.tick(now) {
                server.receive(now, client_addr(), &w);
            }
            for (_, w) in server.tick(now) {
                let _ = client.receive(now, &w);
            }
        }
        // The prompt reached the client's copy of the screen.
        assert_eq!(client.remote_state().frame().row_text(0), "$");
    }

    #[test]
    fn flood_output_is_coalesced_not_queued() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_keystroke(b"y");
        input.push_keystroke(b"e");
        input.push_keystroke(b"s");
        input.push_keystroke(b"\r");
        client.set_current_state(input, 0);
        pump(&mut client, &mut server, 10);
        // Run 2 s of flood: the terminal keeps changing, but SSP sends at
        // the frame rate, so the datagram count stays modest.
        let mut sent = 0usize;
        for t in 11..2000 {
            sent += server.tick(t).len();
        }
        assert!(sent > 0);
        assert!(
            sent < 200,
            "flood must be frame-rate limited, sent {sent} datagrams"
        );
        // The screen shows the *latest* flood output, not a backlog.
        assert!(server.frame().to_text().contains('y'));
    }
}
