//! The Mosh server: terminal host, echo-ack bookkeeping, and roaming.
//!
//! The server owns the **authoritative** terminal state (paper §3): it
//! applies user keystrokes to the hosted application, applies the
//! application's writes to the emulator, and lets SSP synchronize the
//! resulting frames back to the client. Two pieces of paper machinery live
//! here:
//!
//! * **Echo ack (§3.2)** — a keystroke that has been presented to the
//!   application for at least [`ECHO_TIMEOUT`] is acknowledged in the
//!   synchronized state, so the client can judge its predictions without
//!   any client-side timeout (jitter-immune).
//! * **Roaming (§2.2)** — "every time the server receives an authentic
//!   datagram from the client with a sequence number greater than any
//!   before, it sets the packet's source IP address and UDP port number as
//!   its new target."

use crate::apps::{Application, TimedWrite};
use crate::Millis;
use mosh_crypto::session::Direction;
use mosh_crypto::Base64Key;
use mosh_net::{Addr, Host};
use mosh_ssp::datagram::{DatagramLayer, Opened};
use mosh_ssp::fragment::FragmentAssembly;
use mosh_ssp::receiver::{Receiver, ReceiverStats};
use mosh_ssp::rtt::RttEstimator;
use mosh_ssp::sender::{Sender, SenderParts, SenderStats, TimestampedState};
use mosh_ssp::transport::{ReceiveEvent, Transport, TransportStats};
use mosh_ssp::wire::{put_bytes, put_varint, Reader};
use mosh_states::{CompleteTerminal, UserEvent, UserStream};
use std::collections::VecDeque;

/// Server-side echo acknowledgment timeout: "chosen to contain the vast
/// majority of legitimate application echoes on loaded servers, while
/// still fast enough to rapidly detect mistaken predictions" (§3.2).
pub const ECHO_TIMEOUT: Millis = 50;

/// The server half of a Mosh session.
///
/// The authoritative terminal lives *inside* the transport's sender (its
/// current state), mutated in place as writes apply — there is no second
/// terminal copy cloned into the sender per frame; the only snapshots
/// taken are the sender's retained diff sources, one per state actually
/// shipped.
pub struct MoshServer {
    transport: Transport<CompleteTerminal, UserStream>,
    app: Box<dyn Application>,
    /// True when the terminal changed since the last commit to the
    /// sender's collection clock.
    dirty: bool,
    /// Next user-stream event index to apply.
    applied_through: u64,
    /// Keystrokes applied but not yet echo-acked: (index+1, applied_at).
    echo_queue: VecDeque<(u64, Millis)>,
    /// Application writes not yet due.
    pending_writes: VecDeque<TimedWrite>,
    /// Where to send packets: the source of the newest authentic datagram.
    target: Option<Addr>,
    started: bool,
    /// Instrumentation for Figure 3: (write arrival time, shipped time).
    write_delays: Vec<(Millis, Millis)>,
    /// Writes applied to the terminal but not yet shipped in a frame.
    unshipped_writes: Vec<Millis>,
}

impl MoshServer {
    /// Creates a server hosting `app`, keyed for one client.
    pub fn new(key: Base64Key, app: Box<dyn Application>) -> Self {
        MoshServer {
            transport: Transport::new(
                key,
                Direction::ToClient,
                CompleteTerminal::initial(),
                UserStream::new(),
            ),
            app,
            dirty: false,
            applied_through: 0,
            echo_queue: VecDeque::new(),
            pending_writes: VecDeque::new(),
            target: None,
            started: false,
            write_delays: Vec::new(),
            unshipped_writes: Vec::new(),
        }
    }

    /// Overrides the collection interval (Figure 3's sweep).
    pub fn set_mindelay(&mut self, mindelay: Millis) {
        self.transport.set_mindelay(mindelay);
    }

    /// The authoritative screen (for tests and the Control-C experiment).
    pub fn frame(&self) -> &mosh_terminal::Framebuffer {
        self.transport.current_state().frame()
    }

    /// Scrolls the host-side viewport `delta` lines into scrollback
    /// (negative values move back toward the live screen). Viewport
    /// state — scrollback plus [`Framebuffer::display_offset`] — rides
    /// session snapshots (migration, checkpoint/resurrect, handoff) but
    /// is never part of the synchronized state the client sees, so this
    /// needs no sender commit and changes no wire traffic.
    ///
    /// [`Framebuffer::display_offset`]: mosh_terminal::Framebuffer::display_offset
    pub fn scroll_view(&mut self, delta: isize) {
        self.transport.current_state_mut().scroll_view(delta);
    }

    /// Smoothed RTT as the server sees it.
    pub fn srtt(&self) -> f64 {
        self.transport.srtt()
    }

    /// The address the server currently replies to.
    pub fn target(&self) -> Option<Addr> {
        self.target
    }

    /// Per-write protocol-induced delays `(arrived, shipped)` recorded so
    /// far — the quantity Figure 3 averages.
    pub fn write_delays(&self) -> &[(Millis, Millis)] {
        &self.write_delays
    }

    /// Sender statistics (piggyback/heartbeat counters for the ablations).
    pub fn sender_stats(&self) -> &mosh_ssp::sender::SenderStats {
        self.transport.sender_stats()
    }

    /// True when `wire` authenticates under this session's key, without
    /// consuming it. A multi-session hub uses this to demultiplex
    /// datagrams whose source address is ambiguous (two roaming clients
    /// behind one NAT address, paper §2.2) — authentication, never the
    /// address, decides session identity.
    pub fn authenticates(&self, wire: &[u8]) -> bool {
        self.transport.authenticates(wire)
    }

    /// Authenticates and decrypts `wire` without consuming it, returning
    /// the opened-datagram token on success — the decrypt-once demux
    /// probe. Consume the token with [`MoshServer::receive_opened`].
    pub fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        self.transport.open(wire).ok()
    }

    /// [`MoshServer::try_open`] over a whole drained batch in one cipher
    /// pass, appending one verdict per wire to `out` (strictly per
    /// wire: a bad packet never affects its batch siblings).
    pub fn try_open_many(&mut self, wires: &[&[u8]], out: &mut Vec<Option<Opened>>) {
        out.extend(self.transport.open_many(wires).into_iter().map(Result::ok));
    }

    /// Number of OCB open attempts this endpoint has performed
    /// (decrypt-once instrumentation).
    pub fn decrypt_count(&self) -> u64 {
        self.transport.decrypt_count()
    }

    /// Wire counters (sent/accepted/rejected datagrams).
    pub fn transport_stats(&self) -> &mosh_ssp::transport::TransportStats {
        self.transport.stats()
    }

    /// Next outgoing datagram sequence number (nonce bookkeeping —
    /// lets recovery tests verify the resurrection skip margin).
    pub fn next_seq(&self) -> u64 {
        self.transport.datagram().snapshot_parts().2
    }

    fn schedule_writes(&mut self, writes: Vec<TimedWrite>) {
        Self::schedule_into(&mut self.pending_writes, writes);
    }

    /// Queues writes ordered by due time (stable for equal times); an
    /// associated fn so callers holding other field borrows can use it.
    fn schedule_into(pending_writes: &mut VecDeque<TimedWrite>, writes: Vec<TimedWrite>) {
        for w in writes {
            let pos = pending_writes
                .iter()
                .position(|p| p.at > w.at)
                .unwrap_or(pending_writes.len());
            pending_writes.insert(pos, w);
        }
    }

    /// Handles one wire datagram from `from`, arriving at `now`.
    pub fn receive(&mut self, now: Millis, from: Addr, wire: &[u8]) {
        let Ok(event) = self.transport.receive(now, wire) else {
            return; // Inauthentic datagrams are line noise.
        };
        self.after_receive(now, from, event);
    }

    /// Handles an already-opened datagram from `from` at `now` (the
    /// decrypt-once path): same behavior as [`MoshServer::receive`] of
    /// the original wire, without a second OCB pass.
    pub fn receive_opened(&mut self, now: Millis, from: Addr, opened: Opened) {
        let Ok(event) = self.transport.recv_opened(now, opened) else {
            return;
        };
        self.after_receive(now, from, event);
    }

    fn after_receive(&mut self, now: Millis, from: Addr, event: ReceiveEvent) {
        if event.new_high_seq {
            // Roaming: re-target to the newest authentic source address.
            self.target = Some(from);
        }
        if !event.remote_advanced {
            return;
        }
        // Apply newly arrived user events to the application/terminal.
        // Split borrows twice over: the remote user stream is iterated in
        // place (it holds every event of the session, so cloning it per
        // datagram would cost ever more as the session ages), and the
        // terminal is the transport's own current state, mutated in place
        // alongside it.
        let Self {
            transport,
            app,
            dirty,
            applied_through,
            echo_queue,
            pending_writes,
            ..
        } = self;
        let (terminal, remote) = transport.split_states();
        for (idx, ev) in remote.events_from(*applied_through) {
            match ev {
                UserEvent::Keystroke(bytes) => {
                    let writes = app.on_input(now, bytes);
                    Self::schedule_into(pending_writes, writes);
                }
                UserEvent::Resize { width, height } => {
                    terminal.resize(*width as usize, *height as usize);
                    *dirty = true;
                    let writes = app.on_resize(now, *width as usize, *height as usize);
                    Self::schedule_into(pending_writes, writes);
                }
            }
            echo_queue.push_back((idx + 1, now));
            *applied_through = idx + 1;
        }
    }

    /// Runs timers at `now`; returns datagrams to send to [`Self::target`].
    pub fn tick(&mut self, now: Millis) -> Vec<(Addr, Vec<u8>)> {
        if !self.started {
            self.started = true;
            let writes = self.app.start(now);
            self.schedule_writes(writes);
        }
        // Spontaneous application output (floods).
        let polled = self.app.poll(now);
        self.schedule_writes(polled);

        // Apply due writes to the authoritative terminal (the sender's
        // current state, mutated in place).
        while let Some(w) = self.pending_writes.front() {
            if w.at > now {
                break;
            }
            let w = self.pending_writes.pop_front().expect("peeked");
            self.transport.current_state_mut().act(&w.bytes);
            self.unshipped_writes.push(w.at.max(now));
            self.dirty = true;
        }

        // Terminal replies (DA/DSR) feed back into the application.
        let answerback = self.transport.current_state_mut().take_answerback();
        if !answerback.is_empty() {
            let writes = self.app.on_input(now, &answerback);
            self.schedule_writes(writes);
        }

        // Echo ack: keystrokes presented >= 50 ms ago (or already echoed —
        // subsumed: the 50 ms timeout covers both cases conservatively).
        let mut new_ack = None;
        while let Some(&(idx, at)) = self.echo_queue.front() {
            if now >= at + ECHO_TIMEOUT {
                new_ack = Some(idx);
                self.echo_queue.pop_front();
            } else {
                break;
            }
        }
        if let Some(ack) = new_ack {
            if ack > self.transport.current_state().echo_ack() {
                self.transport.current_state_mut().set_echo_ack(ack);
                self.dirty = true;
            }
        }

        if self.dirty {
            self.transport.commit_current(now);
            self.dirty = false;
        }

        // Until a client datagram arrives there is nowhere to send; running
        // the sender would record states as shipped when they never left.
        if self.target.is_none() {
            return Vec::new();
        }
        let wires = self.transport.tick(now);
        if !wires.is_empty() && !self.transport.pending_data() {
            // The frame just sent covers every write applied so far (a
            // pure ack/heartbeat would leave pending_data true).
            for arrived in self.unshipped_writes.drain(..) {
                self.write_delays.push((arrived, now));
            }
        }
        let target = self.target.expect("checked above");
        wires.into_iter().map(|w| (target, w)).collect()
    }

    /// The earliest time `tick` needs to run again (event-driven stepping).
    ///
    /// Purely schedule-driven: the application's own wakeup, the pending
    /// write queue, the echo-ack timer, and the transport's timers. There
    /// is no polling floor — `Application::next_wakeup`'s contract is that
    /// `None` means no spontaneous output until input re-arms it, so a
    /// quiet session sleeps until its next real deadline instead of
    /// burning a wakeup every 50 ms.
    pub fn next_wakeup(&self, now: Millis) -> Millis {
        let mut next = Millis::MAX;
        if let Some(t) = self.app.next_wakeup(now) {
            next = next.min(t);
        }
        if let Some(w) = self.pending_writes.front() {
            next = next.min(w.at);
        }
        if let Some(&(_, at)) = self.echo_queue.front() {
            next = next.min(at + ECHO_TIMEOUT);
        }
        if let Some(t) = self.transport.next_wakeup() {
            next = next.min(t);
        }
        next.max(now)
    }

    /// Time the client was last heard from.
    pub fn last_heard(&self) -> Option<Millis> {
        self.transport.last_heard()
    }

    // -----------------------------------------------------------------
    // Session snapshots (migration / crash recovery / handoff)
    // -----------------------------------------------------------------

    /// A cheap activity fingerprint for checkpoint cadence decisions: it
    /// changes whenever the synchronized conversation advances in either
    /// direction. Terminal mutations not yet committed into a shipped
    /// state are not reflected, so a cadence tick may skip a session once
    /// and catch it on the next — an accepted approximation (the ack
    /// ceiling keeps the tail recoverable regardless).
    pub fn activity_marker(&self) -> (u64, u64) {
        (
            self.transport.latest_sent_num(),
            self.transport.remote_state_num(),
        )
    }

    /// Takes a checkpoint: raises the outgoing-ack ceiling to the highest
    /// client state number this checkpoint makes durable, then serializes
    /// the whole session. The order matters — the stored snapshot carries
    /// the raised ceiling, and the live server never acknowledges input
    /// beyond what its newest checkpoint contains, so a resurrected twin
    /// needs nothing the client will not retransmit on its own (§2.2's
    /// retransmit machinery doubles as the recovery log).
    pub fn checkpoint_body(&mut self) -> Vec<u8> {
        self.transport
            .set_ack_ceiling(Some(self.transport.remote_state_num()));
        let mut out = Vec::new();
        self.encode_snapshot_body(&mut out);
        out
    }

    /// Skips the outgoing nonce sequence forward by `margin`. Crash
    /// recovery cannot know how many datagrams the dead shard sent after
    /// its last checkpoint, so resurrection burns a generous gap instead
    /// of risking nonce reuse under the same key. Clean handoff (quiesced
    /// snapshot, nothing sent afterwards) must *not* skip — that keeps the
    /// restored wire bytes identical.
    pub fn skip_seq_ahead(&mut self, margin: u64) {
        let next_seq = self.transport.datagram().snapshot_parts().2;
        self.transport
            .datagram_mut()
            .skip_seq_to(next_seq.saturating_add(margin));
    }

    /// Serializes the complete explicit session state — crypto sequence
    /// numbers, SSP shipped-state lists and ack bookkeeping, the
    /// authoritative terminal, echo/write queues, roaming target, and the
    /// hosted application's dynamic state. Body only: framing (magic,
    /// version, checksum) is the hub snapshot module's job.
    pub fn encode_snapshot_body(&self, out: &mut Vec<u8>) {
        let (key, _dir, next_seq, decrypt_ops, (srtt, rttvar, has_sample), max_seq, saved_ts) =
            self.transport.datagram().snapshot_parts();
        out.extend_from_slice(key.as_bytes());
        put_varint(out, next_seq);
        put_varint(out, decrypt_ops);
        put_varint(out, srtt.to_bits());
        put_varint(out, rttvar.to_bits());
        put_bool(out, has_sample);
        put_opt(out, max_seq);
        match saved_ts {
            None => put_varint(out, 0),
            Some((ts, at)) => {
                put_varint(out, 1);
                put_varint(out, u64::from(ts));
                put_varint(out, at);
            }
        }

        let parts = self.transport.sender_parts();
        put_varint(out, parts.sent_states.len() as u64);
        for s in &parts.sent_states {
            put_varint(out, s.num);
            put_varint(out, s.timestamp);
            s.state.encode_into(out);
        }
        parts.current.encode_into(out);
        put_opt(out, parts.mindelay_clock);
        put_varint(out, parts.mindelay);
        put_varint(out, parts.ack_num);
        put_varint(out, parts.next_ack_time);
        put_bool(out, parts.ack_pending);
        put_bool(out, parts.sent_anything);
        let ss = &parts.stats;
        for v in [
            ss.data,
            ss.retransmits,
            ss.pure_acks,
            ss.heartbeats,
            ss.piggybacked_acks,
        ] {
            put_varint(out, v);
        }

        let states = self.transport.receiver_states();
        put_varint(out, states.len() as u64);
        for s in states {
            put_varint(out, s.num);
            put_varint(out, s.timestamp);
            s.state.encode_into(out);
        }
        let rs = self.transport.receiver_stats();
        for v in [rs.applied, rs.duplicates, rs.missing_source] {
            put_varint(out, v);
        }

        let (frag_id, pieces, frag_total) = self.transport.assembly().snapshot_parts();
        put_opt(out, frag_id);
        put_varint(out, pieces.len() as u64);
        for p in pieces {
            match p {
                None => put_varint(out, 0),
                Some(b) => {
                    put_varint(out, 1);
                    put_bytes(out, b);
                }
            }
        }
        put_opt(out, frag_total.map(|t| t as u64));

        put_varint(out, self.transport.next_instruction_id());
        let ts = self.transport.stats();
        for v in [
            ts.datagrams_sent,
            ts.datagrams_received,
            ts.datagrams_rejected,
        ] {
            put_varint(out, v);
        }
        put_opt(out, self.transport.last_heard());
        put_opt(out, self.transport.ack_ceiling());

        put_bool(out, self.dirty);
        put_varint(out, self.applied_through);
        put_varint(out, self.echo_queue.len() as u64);
        for &(idx, at) in &self.echo_queue {
            put_varint(out, idx);
            put_varint(out, at);
        }
        put_varint(out, self.pending_writes.len() as u64);
        for w in &self.pending_writes {
            put_varint(out, w.at);
            put_bytes(out, &w.bytes);
        }
        match self.target {
            None => put_varint(out, 0),
            Some(addr) => {
                put_varint(out, 1);
                put_addr(out, addr);
            }
        }
        put_bool(out, self.started);
        put_varint(out, self.write_delays.len() as u64);
        for &(arrived, shipped) in &self.write_delays {
            put_varint(out, arrived);
            put_varint(out, shipped);
        }
        put_varint(out, self.unshipped_writes.len() as u64);
        for &at in &self.unshipped_writes {
            put_varint(out, at);
        }
        put_bytes(out, &self.app.save_state());
    }

    /// Rebuilds a server from a snapshot body plus a freshly constructed
    /// application twin (construction parameters are the caller's to
    /// remember; the snapshot carries only dynamic state). Returns `None`
    /// on any inconsistency — a corrupt snapshot is rejected whole, never
    /// half-applied. The restored sender accepts future acks (resync):
    /// if the client has already acknowledged states newer than the
    /// snapshot, the server adopts that ack and re-sends a self-contained
    /// full diff.
    pub fn decode_snapshot_body(bytes: &[u8], mut app: Box<dyn Application>) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let key = Base64Key::from_bytes(r.take(16).ok()?.try_into().ok()?);
        let next_seq = r.varint().ok()?;
        let decrypt_ops = r.varint().ok()?;
        let srtt = f64::from_bits(r.varint().ok()?);
        let rttvar = f64::from_bits(r.varint().ok()?);
        let has_sample = get_bool(&mut r)?;
        let max_seq = get_opt(&mut r)?;
        let saved_ts = match r.varint().ok()? {
            0 => None,
            1 => {
                let ts = u16::try_from(r.varint().ok()?).ok()?;
                Some((ts, r.varint().ok()?))
            }
            _ => return None,
        };
        let datagram = DatagramLayer::restore(
            key,
            Direction::ToClient,
            next_seq,
            decrypt_ops,
            RttEstimator::from_parts(srtt, rttvar, has_sample),
            max_seq,
            saved_ts,
        );

        let n = r.varint().ok()?;
        let mut sent_states = Vec::new();
        for _ in 0..n {
            let num = r.varint().ok()?;
            let timestamp = r.varint().ok()?;
            let state = CompleteTerminal::decode(&mut r)?;
            sent_states.push(TimestampedState {
                num,
                timestamp,
                state,
            });
        }
        let current = CompleteTerminal::decode(&mut r)?;
        let mindelay_clock = get_opt(&mut r)?;
        let mindelay = r.varint().ok()?;
        let ack_num = r.varint().ok()?;
        let next_ack_time = r.varint().ok()?;
        let ack_pending = get_bool(&mut r)?;
        let sent_anything = get_bool(&mut r)?;
        let stats = SenderStats {
            data: r.varint().ok()?,
            retransmits: r.varint().ok()?,
            pure_acks: r.varint().ok()?,
            heartbeats: r.varint().ok()?,
            piggybacked_acks: r.varint().ok()?,
        };
        let sender = Sender::restore(SenderParts {
            sent_states,
            current,
            mindelay_clock,
            mindelay,
            ack_num,
            next_ack_time,
            ack_pending,
            sent_anything,
            stats,
        })?;

        let n = r.varint().ok()?;
        let mut recv_states = Vec::new();
        for _ in 0..n {
            let num = r.varint().ok()?;
            let timestamp = r.varint().ok()?;
            let state = UserStream::decode(&mut r)?;
            recv_states.push(TimestampedState {
                num,
                timestamp,
                state,
            });
        }
        let recv_stats = ReceiverStats {
            applied: r.varint().ok()?,
            duplicates: r.varint().ok()?,
            missing_source: r.varint().ok()?,
        };
        let receiver = Receiver::restore(recv_states, recv_stats)?;

        let frag_id = get_opt(&mut r)?;
        let n = r.varint().ok()?;
        let mut pieces = Vec::new();
        for _ in 0..n {
            pieces.push(match r.varint().ok()? {
                0 => None,
                1 => Some(r.bytes().ok()?.to_vec()),
                _ => return None,
            });
        }
        let frag_total = match get_opt(&mut r)? {
            None => None,
            Some(t) => Some(usize::try_from(t).ok()?),
        };
        let assembly = FragmentAssembly::restore(frag_id, pieces, frag_total)?;

        let next_instruction_id = r.varint().ok()?;
        let t_stats = TransportStats {
            datagrams_sent: r.varint().ok()?,
            datagrams_received: r.varint().ok()?,
            datagrams_rejected: r.varint().ok()?,
        };
        let last_heard = get_opt(&mut r)?;
        let ack_ceiling = get_opt(&mut r)?;
        let transport = Transport::restore(
            datagram,
            sender,
            receiver,
            assembly,
            next_instruction_id,
            t_stats,
            last_heard,
            ack_ceiling,
        );

        let dirty = get_bool(&mut r)?;
        let applied_through = r.varint().ok()?;
        let n = r.varint().ok()?;
        let mut echo_queue = VecDeque::new();
        for _ in 0..n {
            echo_queue.push_back((r.varint().ok()?, r.varint().ok()?));
        }
        let n = r.varint().ok()?;
        let mut pending_writes = VecDeque::new();
        for _ in 0..n {
            let at = r.varint().ok()?;
            let bytes = r.bytes().ok()?.to_vec();
            pending_writes.push_back(TimedWrite { at, bytes });
        }
        let target = match r.varint().ok()? {
            0 => None,
            1 => Some(get_addr(&mut r)?),
            _ => return None,
        };
        let started = get_bool(&mut r)?;
        let n = r.varint().ok()?;
        let mut write_delays = Vec::new();
        for _ in 0..n {
            write_delays.push((r.varint().ok()?, r.varint().ok()?));
        }
        let n = r.varint().ok()?;
        let mut unshipped_writes = Vec::new();
        for _ in 0..n {
            unshipped_writes.push(r.varint().ok()?);
        }
        let app_state = r.bytes().ok()?;
        if r.remaining() != 0 || !app.restore_state(app_state) {
            return None;
        }

        Some(MoshServer {
            transport,
            app,
            dirty,
            applied_through,
            echo_queue,
            pending_writes,
            target,
            started,
            write_delays,
            unshipped_writes,
        })
    }
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_varint(out, u64::from(v));
}

fn get_bool(r: &mut Reader<'_>) -> Option<bool> {
    match r.varint().ok()? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn put_opt(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_varint(out, 0),
        Some(x) => {
            put_varint(out, 1);
            put_varint(out, x);
        }
    }
}

fn get_opt(r: &mut Reader<'_>) -> Option<Option<u64>> {
    match r.varint().ok()? {
        0 => Some(None),
        1 => Some(Some(r.varint().ok()?)),
        _ => None,
    }
}

fn put_addr(out: &mut Vec<u8>, addr: Addr) {
    match addr.host {
        Host::V4(ip) => {
            put_varint(out, 0);
            put_varint(out, u64::from(ip));
        }
        Host::V6(ip, scope) => {
            put_varint(out, 1);
            out.extend_from_slice(&ip.to_be_bytes());
            put_varint(out, u64::from(scope));
        }
    }
    put_varint(out, u64::from(addr.port));
}

fn get_addr(r: &mut Reader<'_>) -> Option<Addr> {
    let host = match r.varint().ok()? {
        0 => Host::V4(u32::try_from(r.varint().ok()?).ok()?),
        1 => {
            let ip = u128::from_be_bytes(r.take(16).ok()?.try_into().ok()?);
            let scope = u32::try_from(r.varint().ok()?).ok()?;
            Host::V6(ip, scope)
        }
        _ => return None,
    };
    let port = u16::try_from(r.varint().ok()?).ok()?;
    Some(Addr { host, port })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;

    fn key() -> Base64Key {
        Base64Key::from_bytes([8u8; 16])
    }

    /// A minimal fake client transport for driving the server.
    fn client_transport() -> Transport<UserStream, CompleteTerminal> {
        Transport::new(
            key(),
            Direction::ToServer,
            UserStream::new(),
            CompleteTerminal::initial(),
        )
    }

    fn client_addr() -> Addr {
        Addr::new(1, 999)
    }

    /// Ships current client input to the server directly.
    fn pump(
        client: &mut Transport<UserStream, CompleteTerminal>,
        server: &mut MoshServer,
        now: Millis,
    ) {
        for w in client.tick(now) {
            server.receive(now, client_addr(), &w);
        }
    }

    #[test]
    fn server_applies_keystrokes_to_app_and_terminal() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0); // start: prompt appears
        server.tick(1);
        assert_eq!(server.frame().row_text(0), "$");

        let mut input = UserStream::new();
        input.push_keystroke(b"l");
        input.push_keystroke(b"s");
        client.set_current_state(input, 10);
        pump(&mut client, &mut server, 20);
        // Echo delay is 2 ms; run the server forward.
        for t in 21..30 {
            server.tick(t);
        }
        assert_eq!(server.frame().row_text(0), "$ ls");
    }

    #[test]
    fn echo_ack_advances_after_50ms() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_keystroke(b"x");
        client.set_current_state(input, 10);
        pump(&mut client, &mut server, 20);
        server.tick(21);
        // Before the timeout the ack is still 0 in the authoritative state.
        server.tick(69);
        assert_eq!(server.transport.current_state().echo_ack(), 0);
        server.tick(70); // 20 + 50
        assert_eq!(server.transport.current_state().echo_ack(), 1);
    }

    #[test]
    fn resize_events_resize_the_terminal() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_resize(100, 30);
        client.set_current_state(input, 5);
        pump(&mut client, &mut server, 20);
        server.tick(21);
        assert_eq!(server.frame().width(), 100);
        assert_eq!(server.frame().height(), 30);
    }

    #[test]
    fn roaming_retargets_to_newest_source() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_keystroke(b"a");
        client.set_current_state(input.clone(), 0);
        let w1 = client.tick(10);
        server.receive(11, Addr::new(1, 1000), &w1[0]);
        assert_eq!(server.target(), Some(Addr::new(1, 1000)));

        // The client roams: same session, new address.
        input.push_keystroke(b"b");
        client.set_current_state(input, 100);
        let w2 = client.tick(400);
        server.receive(401, Addr::new(7, 7777), &w2[0]);
        assert_eq!(server.target(), Some(Addr::new(7, 7777)), "roamed");

        // A stale reordered packet from the old address does not regress.
        server.receive(402, Addr::new(1, 1000), &w1[0]);
        assert_eq!(server.target(), Some(Addr::new(7, 7777)));
    }

    #[test]
    fn server_syncs_screen_back_to_client() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        // Tell the server where the client is (any authentic datagram).
        client.set_current_state(UserStream::new(), 0);
        for now in 0..6000 {
            for w in client.tick(now) {
                server.receive(now, client_addr(), &w);
            }
            for (_, w) in server.tick(now) {
                let _ = client.receive(now, &w);
            }
        }
        // The prompt reached the client's copy of the screen.
        assert_eq!(client.remote_state().frame().row_text(0), "$");
    }

    /// Builds a server mid-conversation: prompt on screen, one keystroke
    /// applied, client address learned.
    fn busy_server(client: &mut Transport<UserStream, CompleteTerminal>) -> MoshServer {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut input = UserStream::new();
        input.push_keystroke(b"l");
        client.set_current_state(input, 5);
        for now in 0..200 {
            for w in client.tick(now) {
                server.receive(now, client_addr(), &w);
            }
            for (_, w) in server.tick(now) {
                let _ = client.receive(now, &w);
            }
        }
        server
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical_going_forward() {
        let mut client = client_transport();
        let mut server = busy_server(&mut client);
        let body = server.checkpoint_body();
        let mut restored =
            MoshServer::decode_snapshot_body(&body, Box::new(LineShell::new())).expect("decodes");

        // Both servers see the same future (more typing plus quiet ticks);
        // their wire output must match byte for byte.
        let mut input = UserStream::new();
        input.push_keystroke(b"l");
        input.push_keystroke(b"s");
        input.push_keystroke(b"\r");
        client.set_current_state(input, 200);
        let arrivals: Vec<Vec<u8>> = (200..210).flat_map(|now| client.tick(now)).collect();
        let mut a_wires = Vec::new();
        let mut b_wires = Vec::new();
        for now in 200..1200 {
            if now == 205 {
                for w in &arrivals {
                    server.receive(now, client_addr(), w);
                    restored.receive(now, client_addr(), w);
                }
            }
            a_wires.extend(server.tick(now).into_iter().map(|(_, w)| w));
            b_wires.extend(restored.tick(now).into_iter().map(|(_, w)| w));
        }
        assert!(!a_wires.is_empty());
        assert_eq!(a_wires, b_wires, "restored server diverged on the wire");
        assert_eq!(server.frame().to_text(), restored.frame().to_text());
        assert_eq!(server.target(), restored.target());
    }

    #[test]
    fn checkpoint_caps_acks_at_checkpointed_input() {
        let mut client = client_transport();
        let mut server = busy_server(&mut client);
        let ceiling = server.transport.ack_ceiling();
        assert_eq!(ceiling, None, "no cap before the first checkpoint");
        let _ = server.checkpoint_body();
        assert_eq!(
            server.transport.ack_ceiling(),
            Some(server.transport.remote_state_num()),
            "checkpoint caps acks at exactly what it made durable"
        );
    }

    #[test]
    fn snapshot_rejects_truncation_and_trailing_garbage() {
        let mut client = client_transport();
        let mut server = busy_server(&mut client);
        let body = server.checkpoint_body();
        // Every truncation point fails cleanly (sampled stride keeps the
        // test fast; the boundaries near field edges are all hit).
        for cut in (0..body.len()).step_by(7).chain([body.len() - 1]) {
            assert!(
                MoshServer::decode_snapshot_body(&body[..cut], Box::new(LineShell::new()))
                    .is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut extended = body.clone();
        extended.push(0);
        assert!(
            MoshServer::decode_snapshot_body(&extended, Box::new(LineShell::new())).is_none(),
            "trailing garbage must be rejected"
        );
        // A wrong application twin is rejected too.
        assert!(
            MoshServer::decode_snapshot_body(&body, Box::new(crate::apps::Editor::new())).is_none()
        );
    }

    #[test]
    fn flood_output_is_coalesced_not_queued() {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = client_transport();
        server.tick(0);
        let mut input = UserStream::new();
        input.push_keystroke(b"y");
        input.push_keystroke(b"e");
        input.push_keystroke(b"s");
        input.push_keystroke(b"\r");
        client.set_current_state(input, 0);
        pump(&mut client, &mut server, 10);
        // Run 2 s of flood: the terminal keeps changing, but SSP sends at
        // the frame rate, so the datagram count stays modest.
        let mut sent = 0usize;
        for t in 11..2000 {
            sent += server.tick(t).len();
        }
        assert!(sent > 0);
        assert!(
            sent < 200,
            "flood must be frame-rate limited, sent {sent} datagrams"
        );
        // The screen shows the *latest* flood output, not a backlog.
        assert!(server.frame().to_text().contains('y'));
    }
}
