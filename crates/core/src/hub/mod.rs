//! The multi-session server runtime, in two layers:
//!
//! * [`shard`] — [`ServerHub`]: one poller, one timer wheel, N sessions
//!   on **one thread**. The unit of work since PR 3; a sharded runtime
//!   calls one of these a *shard*.
//! * [`router`] — [`ShardedHub`]: N worker threads, each owning a
//!   private `ServerHub`, fed by a sharding front end that assigns
//!   sessions to shards at accept time. Sessions are independent worlds
//!   behind tokens and endpoints are `Send`, so sharding is a layering
//!   decision, not a locking problem — per-session transcripts are
//!   byte-identical to the single-threaded hub for every shard count.
//!
//! The types shared by both layers — [`SessionId`], the per-pump
//! [`HubSession`] lease, and the [`HubStats`] counters — live here.

pub mod router;
pub mod shard;
pub mod snapshot;

pub use router::ShardedHub;
pub use shard::ServerHub;
pub use snapshot::{CheckpointStore, SnapshotError};

use crate::session::Party;
use crate::Millis;

/// Identifies one session within a hub, in registration order. A
/// [`ShardedHub`] hands out *global* ids and maps them to the owning
/// shard's local ids internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub usize);

/// One session's per-pump lease: which registered session it is, the
/// endpoints it currently lends to the hub, and how far to drive it.
///
/// Like [`crate::session::SessionLoop`], the hub borrows endpoints per
/// pump — the caller keeps ownership, injects keystrokes between pumps,
/// and models roaming by changing a party's address (simulator) or
/// rebinding a socket (live).
pub struct HubSession<'p, 'e> {
    /// The registered session this lease belongs to.
    pub id: SessionId,
    /// The endpoints, bound to their current receive addresses.
    pub parties: &'p mut [Party<'e>],
    /// Drive this session's clock up to this instant (its own source's
    /// clock — sources tick independently).
    pub target: Millis,
}

impl<'p, 'e> HubSession<'p, 'e> {
    /// A lease for `id` driving `parties` until `target`.
    pub fn new(id: SessionId, parties: &'p mut [Party<'e>], target: Millis) -> Self {
        HubSession {
            id,
            parties,
            target,
        }
    }
}

/// Hub-level counters (wakeups are the scaling quantity: each costs
/// `O(log sessions)`, so totals grow linearly with live sessions and not
/// at all with idle ones). A [`ShardedHub`] reports the sum over its
/// shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Timer-wheel pops serviced.
    pub wakeups: u64,
    /// Datagrams delivered to a session.
    pub delivered: u64,
    /// Datagrams no session claimed (unknown address, or authentication
    /// failed against every candidate).
    pub dropped: u64,
    /// Deliveries that needed the cryptographic-authentication fallback
    /// (ambiguous receive address).
    pub auth_routed: u64,
    /// Unclaimed datagrams handed to the unclaimed-datagram hook instead
    /// of being dropped (a sharded front end's bounce path — the wire
    /// goes back to the distributor to try the next shard).
    pub bounced: u64,
    /// Shard workers quarantined after an endpoint panic ([`ShardedHub`]
    /// only): the shard's sessions stop, the others keep pumping. See
    /// `ShardedHub::shard_error` for the panic messages.
    pub shard_panics: u64,
    /// Datagrams the shared-socket distributor shed because the target
    /// shard's feed queue was at capacity — the operator-visible signal
    /// that a shard is falling behind its inbound traffic.
    pub feed_overflow: u64,
    /// Distributor forwards of bounced (unclaimed-by-one-shard)
    /// datagrams: sustained growth means inbound traffic keeps missing
    /// its hinted shard.
    pub feed_bounced: u64,
    /// Datagrams no shard claimed after a full distributor fan-out
    /// cycle (line noise, or traffic for sessions already removed).
    pub feed_dropped: u64,
    /// Live source hints in the distributor's map (a gauge, not a
    /// counter: one per client address currently claimed by a shard).
    pub feed_hints: u64,
    /// Sessions moved live between shards (`ShardedHub::migrate_session`
    /// and `rebalance`) — the session keeps pumping on its new shard
    /// with a byte-identical transcript.
    pub sessions_migrated: u64,
    /// Sessions rebuilt from their last checkpoint after their shard
    /// was quarantined (`ShardedHub::resurrect_quarantined`).
    pub sessions_resurrected: u64,
    /// Total framed snapshot bytes written by the checkpoint cadence
    /// (cumulative, across all sessions and checkpoints).
    pub checkpoint_bytes: u64,
    /// Per-shard load signals ([`ShardedHub`] only; empty on a single
    /// [`ServerHub`]): index `i` is shard `i`'s own wakeup/delivery
    /// counters. This is the observability a rebalance policy needs —
    /// compare entries to find hot shards before calling
    /// `ShardedHub::migrate_session` / `rebalance`.
    pub shard_loads: Vec<ShardLoad>,
}

/// One shard's share of the hub load (see [`HubStats::shard_loads`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Timer-wheel pops this shard serviced.
    pub wakeups: u64,
    /// Datagrams this shard delivered to a session.
    pub deliveries: u64,
}

impl HubStats {
    /// Member-wise sum (aggregating shard counters). `shard_loads` is
    /// not summed — the aggregator fills it with one entry per shard.
    pub(crate) fn add(&mut self, other: HubStats) {
        self.wakeups += other.wakeups;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.auth_routed += other.auth_routed;
        self.bounced += other.bounced;
        self.shard_panics += other.shard_panics;
        self.feed_overflow += other.feed_overflow;
        self.feed_bounced += other.feed_bounced;
        self.feed_dropped += other.feed_dropped;
        self.feed_hints += other.feed_hints;
        self.sessions_migrated += other.sessions_migrated;
        self.sessions_resurrected += other.sessions_resurrected;
        self.checkpoint_bytes += other.checkpoint_bytes;
    }
}
