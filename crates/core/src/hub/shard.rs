//! The single-threaded multi-session runtime — one shard of the server.
//!
//! Mosh ships as one server process per session; the production-scale
//! question is what a front end hosting *many* SSP sessions behind one
//! event loop looks like. [`ServerHub`] is that front end (and, under a
//! [`super::ShardedHub`], one worker thread's private shard of it):
//!
//! * it owns one [`Poller`] (the readiness seam over any number of
//!   datagram sources — per-session emulated worlds, or one shared UDP
//!   socket),
//! * a **timer wheel** of per-session `next_wakeup`s, so a wakeup costs
//!   `O(log n)` heap work regardless of how many *other* sessions are
//!   idle — never a scan across the session table,
//! * and a demultiplexer that routes inbound datagrams to sessions by
//!   receive address, falling back to source address and finally to
//!   **cryptographic authentication** when addresses collide (two
//!   clients roamed behind one NAT address — the paper's §2.2 roaming
//!   rule, generalized: the address is a routing hint, the key is the
//!   identity, and plaintext is never misrouted). The authenticating
//!   probe is `Endpoint::try_open`, which *keeps* the verified
//!   plaintext: the winning session consumes the already-opened token,
//!   so an ambiguous-address datagram crosses AES-OCB **exactly once**
//!   (the decrypt-once receive pipeline).
//!
//! Per-session scheduling decisions are made by the same
//! [`SessionDriver`] that powers the single-session
//! [`crate::session::SessionLoop`], and each simulated session lives in
//! its own discrete-event world, so a hub driving N sessions produces
//! **byte-identical per-session wire transcripts** to N dedicated loops
//! (pinned by `tests/event_stepping.rs` and the replay identity suite).

use super::snapshot::{self, CheckpointStore};
use super::{HubSession, HubStats, SessionId};
use crate::session::{SessionDriver, SessionEvent};
use crate::Millis;
use mosh_net::{Addr, Datagram, Poller, Token};
use mosh_ssp::datagram::Opened;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Most datagrams the pump drains from the poller before routing them as
/// one batch — the unit of cross-packet AES/OCB batching on the receive
/// path (matches the distributor's feed batch, so a distributor-fed
/// shard typically opens a whole queue handoff in one cipher pass).
const RECV_BATCH: usize = 64;

/// The unclaimed-datagram hook: called with datagrams no session claims
/// on its registered source, returning true to take ownership of the
/// wire (the sharded bounce path) instead of letting the hub count it
/// dropped.
pub type UnclaimedHook = Box<dyn FnMut(&Datagram) -> bool + Send>;

/// Everything that moves with a session in a live shard-to-shard
/// migration (see [`ServerHub::extract_session`]). The endpoints are
/// caller-owned and never move; the channel moves separately, via
/// [`Poller::extract`] for a private source.
pub struct ExtractedSession {
    /// The source the session lived on (still registered in the old
    /// shard's poller when this is returned).
    pub token: Token,
    /// Scheduling and silence bookkeeping, moved verbatim.
    pub driver: SessionDriver,
    /// The global checkpoint-store key the session was tracked under,
    /// if crash recovery is on (re-track it on the destination shard).
    pub ckpt_key: Option<usize>,
    /// Route keys that no longer point at any session — same contract
    /// as [`ServerHub::remove_session`]'s return value.
    pub evicted_routes: Vec<(Token, Addr)>,
}

/// Registered per-session state that outlives any single pump.
struct Slot {
    token: Token,
    driver: SessionDriver,
    /// Generation of this session's live wheel entry; older entries in
    /// the heap are stale and skipped on pop.
    gen: u64,
    /// False once removed; retired slots keep only this marker (ids are
    /// positional and never reused).
    live: bool,
    /// Crash-recovery bookkeeping, when this session is tracked by a
    /// [`CheckpointStore`] (see [`ServerHub::set_checkpoint_key`]).
    ckpt: Option<CkptState>,
}

/// One tracked session's checkpoint bookkeeping.
struct CkptState {
    /// Key in the shared store — a [`super::ShardedHub`]'s *global*
    /// session id, stable across migrations.
    key: usize,
    /// When the cadence last ran for this session (`None` = never: the
    /// first service after tracking starts checkpoints immediately, so
    /// a freshly added or migrated-in session always has a snapshot).
    last_at: Option<Millis>,
    /// Activity marker captured by the last stored checkpoint — an
    /// unchanged marker means the session saw no new traffic and the
    /// cadence skips the (comparatively expensive) re-encode.
    last_marker: Option<(u64, u64)>,
}

/// The timer wheel: a min-heap of `(due, session, generation)` with lazy
/// invalidation. Re-scheduling a session bumps its generation, so at most
/// one entry per session is live and a wakeup never scans the session
/// table.
#[derive(Default)]
struct TimerWheel {
    heap: BinaryHeap<Reverse<(Millis, usize, u64)>>,
}

impl TimerWheel {
    fn schedule(&mut self, due: Millis, session: usize, gen: u64) {
        self.heap.push(Reverse((due, session, gen)));
    }
}

/// The multi-session runtime: one poller, one timer wheel, N sessions.
pub struct ServerHub<P: Poller> {
    poller: P,
    slots: Vec<Slot>,
    live_sessions: usize,
    wheel: TimerWheel,
    /// Source-address routing hints learned from authenticated traffic:
    /// which session(s) last proved ownership of datagrams from this
    /// source. Only ever an *ordering* hint for the authentication
    /// fallback — never trusted on its own when addresses are ambiguous —
    /// and evicted when a session is removed.
    routes: HashMap<(Token, Addr), Vec<SessionId>>,
    stats: HubStats,
    /// Per-source unclaimed-datagram hooks (see
    /// [`ServerHub::set_unclaimed`]). A hooked token is a
    /// **distributor-shared** source: sessions owned by *other* shards
    /// also live behind it, so routing on it must always authenticate —
    /// a lone local candidate proves nothing, and a wire it cannot open
    /// belongs elsewhere and is handed to the hook (bounced), never
    /// silently fed to the wrong endpoint.
    unclaimed: Vec<(Token, UnclaimedHook)>,
    /// Crash-recovery configuration: the shared store checkpoints are
    /// written to and the cadence between checkpoints of one session.
    /// `None` (the default) disables the cadence entirely.
    checkpoints: Option<(CheckpointStore, Millis)>,
}

impl<P: Poller> ServerHub<P> {
    /// A hub over `poller` (register sources on it first or via
    /// [`ServerHub::poller_mut`]).
    pub fn new(poller: P) -> Self {
        ServerHub {
            poller,
            slots: Vec::new(),
            live_sessions: 0,
            wheel: TimerWheel::default(),
            routes: HashMap::new(),
            stats: HubStats::default(),
            unclaimed: Vec::new(),
            checkpoints: None,
        }
    }

    /// Turns on the crash-recovery checkpoint cadence: every tracked
    /// session (see [`ServerHub::set_checkpoint_key`]) is snapshotted
    /// into `store` at most every `cadence` ms of its own clock — and
    /// only when its activity marker moved, so idle sessions cost
    /// nothing. Each checkpoint caps the session's outgoing acks at the
    /// input it contains ([`crate::server::MoshServer::checkpoint_body`]),
    /// so anything the checkpoint misses, the client keeps retransmitting.
    pub fn enable_checkpointing(&mut self, store: CheckpointStore, cadence: Millis) {
        self.checkpoints = Some((store, cadence));
    }

    /// The store the checkpoint cadence writes to, when enabled.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.checkpoints.as_ref().map(|(s, _)| s)
    }

    /// Tracks `sid` in the checkpoint store under `key` (a sharded
    /// hub's *global* session id — stable across migrations). The next
    /// service of the session writes its first checkpoint immediately.
    pub fn set_checkpoint_key(&mut self, sid: SessionId, key: usize) {
        self.slots[sid.0].ckpt = Some(CkptState {
            key,
            last_at: None,
            last_marker: None,
        });
    }

    /// The store key `sid` is tracked under, if any.
    pub fn checkpoint_key(&self, sid: SessionId) -> Option<usize> {
        self.slots[sid.0].ckpt.as_ref().map(|c| c.key)
    }

    /// Installs the unclaimed-datagram hook for source `tok`: wires no
    /// session claims there are offered to `hook` before being counted
    /// dropped; returning true takes the wire (counted bounced instead).
    /// A sharded front end uses this to return another shard's traffic
    /// to the distributor — the fan-out leg of the cross-shard
    /// authentication fallback.
    ///
    /// Installing a hook also marks `tok` as a **shared** source:
    /// datagrams on it are always routed by cryptographic
    /// authentication, never by the single-candidate fast path — a shard
    /// holding one session behind a distributor-shared socket must still
    /// bounce foreign clients' datagrams rather than swallow them.
    pub fn set_unclaimed(&mut self, tok: Token, hook: UnclaimedHook) {
        self.unclaimed.retain(|(t, _)| *t != tok);
        self.unclaimed.push((tok, hook));
    }

    /// True when `tok` is a distributor-shared source (it has an
    /// unclaimed-datagram hook), so routing on it must authenticate.
    fn is_shared(&self, tok: Token) -> bool {
        self.unclaimed.iter().any(|(t, _)| *t == tok)
    }

    /// Registers a session living on source `token`. Many sessions may
    /// share one token (a UDP socket serving hundreds of clients); a
    /// simulated session typically gets its own.
    pub fn add_session(&mut self, token: Token) -> SessionId {
        self.add_session_with_driver(token, SessionDriver::new())
    }

    /// Registers a session that arrives with scheduling state already —
    /// the receiving half of a live migration: the driver (silence
    /// bookkeeping, outbox scratch) moves verbatim from the old shard,
    /// so the session's behavior is indistinguishable from never having
    /// moved.
    pub fn add_session_with_driver(&mut self, token: Token, driver: SessionDriver) -> SessionId {
        let sid = SessionId(self.slots.len());
        self.slots.push(Slot {
            token,
            driver,
            gen: 0,
            live: true,
            ckpt: None,
        });
        self.live_sessions += 1;
        sid
    }

    /// Detaches a live session for migration to another shard: the slot
    /// is retired exactly as in [`ServerHub::remove_session`], but the
    /// scheduling state and checkpoint bookkeeping are returned to the
    /// caller instead of dropped. The channel itself is *not* touched —
    /// the router extracts it from this shard's poller (private source)
    /// or re-homes the session onto the destination's shared token.
    ///
    /// Returns `None` if the session was already removed.
    pub fn extract_session(&mut self, sid: SessionId) -> Option<ExtractedSession> {
        let slot = &mut self.slots[sid.0];
        if !slot.live {
            return None;
        }
        slot.live = false;
        slot.gen += 1; // invalidate any queued wheel entry
        let driver = std::mem::take(&mut slot.driver);
        let ckpt_key = slot.ckpt.take().map(|c| c.key);
        let token = slot.token;
        self.live_sessions -= 1;
        let mut evicted_routes = Vec::new();
        self.routes.retain(|key, sids| {
            sids.retain(|s| *s != sid);
            if sids.is_empty() {
                evicted_routes.push(*key);
                false
            } else {
                true
            }
        });
        Some(ExtractedSession {
            token,
            driver,
            ckpt_key,
            evicted_routes,
        })
    }

    /// Retires a session (the user logged out, the session timed out):
    /// its wheel entries become stale, its driver state is dropped, and
    /// every source-address route pointing at it is evicted, so a
    /// long-running hub's memory tracks *live* sessions, not historical
    /// ones. The id is never reused; leasing a retired id panics.
    ///
    /// Returns the `(token, source address)` route keys that no longer
    /// point at any session, so a front end can evict matching state of
    /// its own (a distributor's source hints — see
    /// `ShardedHub::remove_session`).
    pub fn remove_session(&mut self, sid: SessionId) -> Vec<(Token, Addr)> {
        let slot = &mut self.slots[sid.0];
        if !slot.live {
            return Vec::new();
        }
        slot.live = false;
        slot.gen += 1; // invalidate any queued wheel entry
        slot.driver = SessionDriver::new(); // drop silence bookkeeping
        if let (Some(ck), Some((store, _))) = (slot.ckpt.take(), self.checkpoints.as_ref()) {
            store.remove(ck.key); // a removed session never resurrects
        }
        self.live_sessions -= 1;
        let mut evicted = Vec::new();
        self.routes.retain(|key, sids| {
            sids.retain(|s| *s != sid);
            if sids.is_empty() {
                evicted.push(*key);
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Configures a session's peer-silence timeout (see
    /// [`SessionEvent::PeerTimeout`]); `None` disables.
    pub fn set_peer_timeout(&mut self, sid: SessionId, timeout: Option<Millis>) {
        self.slots[sid.0].driver.set_peer_timeout(timeout);
    }

    /// Number of sessions registered and not yet removed.
    pub fn session_count(&self) -> usize {
        self.live_sessions
    }

    /// The source a session lives on.
    pub fn token_of(&self, sid: SessionId) -> Token {
        self.slots[sid.0].token
    }

    /// Number of live sessions registered on source `tok` (migration
    /// feasibility: a private source moves shards only with *all* its
    /// co-located sessions, or not at all).
    pub fn sessions_on(&self, tok: Token) -> usize {
        self.slots
            .iter()
            .filter(|s| s.live && s.token == tok)
            .count()
    }

    /// Current time on a session's source clock.
    pub fn now(&self, sid: SessionId) -> Millis {
        self.poller.now(self.slots[sid.0].token)
    }

    /// Hub counters.
    pub fn stats(&self) -> HubStats {
        self.stats.clone()
    }

    /// The readiness seam (network stats, socket addresses, ...).
    pub fn poller(&self) -> &P {
        &self.poller
    }

    /// Mutable poller access (add sources, rebind sockets, register
    /// roamed emulator addresses, ...).
    pub fn poller_mut(&mut self) -> &mut P {
        &mut self.poller
    }

    /// Unwraps the poller.
    pub fn into_poller(self) -> P {
        self.poller
    }

    /// Drives every leased session until its own target, returning all
    /// events tagged by session, in the order they happened.
    ///
    /// Per-session semantics are exactly
    /// [`crate::session::SessionLoop::pump_until`]'s: deliveries *at* the
    /// target are processed, ticks at the target wait for the next pump
    /// (after the caller injects input). Sessions left out of a pump are
    /// parked: their state persists, but datagrams arriving for them are
    /// dropped like any unclaimed traffic.
    pub fn pump(&mut self, sessions: &mut [HubSession<'_, '_>]) -> Vec<(SessionId, SessionEvent)> {
        let mut events: Vec<(SessionId, SessionEvent)> = Vec::new();
        let mut scratch: Vec<SessionEvent> = Vec::new();
        let mut drained: Vec<(Token, Millis, Datagram)> = Vec::with_capacity(RECV_BATCH);

        // Where each leased session sits in `sessions`, and which leases
        // claim each (token, receive address): rebuilt per pump because
        // the caller may re-address parties between pumps (roaming).
        let mut pos: HashMap<SessionId, usize> = HashMap::new();
        let mut to_index: HashMap<(Token, Addr), Vec<usize>> = HashMap::new();
        for (i, s) in sessions.iter().enumerate() {
            assert!(self.slots[s.id.0].live, "session {:?} was removed", s.id);
            let prev = pos.insert(s.id, i);
            assert!(prev.is_none(), "session {:?} leased twice", s.id);
            let tok = self.slots[s.id.0].token;
            for p in s.parties.iter() {
                let entry = to_index.entry((tok, p.addr)).or_default();
                if !entry.contains(&i) {
                    entry.push(i);
                }
            }
        }

        // First service round: every session ticks at its current now
        // (unless it already reached its target).
        for i in 0..sessions.len() {
            let now = self.poller.now(self.slots[sessions[i].id.0].token);
            if now < sessions[i].target {
                self.service(i, now, sessions, &mut events, &mut scratch);
            }
        }

        // The event loop: always wake the earliest-due session, route
        // whatever arrived anywhere, re-arm everyone it woke.
        while let Some((due, sid)) = self.pop_due() {
            let Some(&i) = pos.get(&sid) else {
                // A stale entry for a session not leased this pump
                // (possible only if a caller abandoned a pump mid-way —
                // defensive, not a normal path).
                continue;
            };
            self.stats.wakeups += 1;
            let tok = self.slots[sid.0].token;
            self.poller.wait_until(tok, due);

            // Route and deliver everything that arrived, on any source —
            // drained up to RECV_BATCH at a time so hinted datagrams bound
            // for the same endpoint cross AES-OCB as one batched cipher
            // call (`speculate`), then consumed strictly in arrival order.
            // Arrival timestamps are captured at drain time, so batching
            // is observably identical to the sequential loop it replaced.
            let mut woken: Vec<usize> = Vec::new();
            loop {
                drained.clear();
                while drained.len() < RECV_BATCH {
                    let Some((t2, dg)) = self.poller.poll_any() else {
                        break;
                    };
                    let at = self.poller.now(t2);
                    drained.push((t2, at, dg));
                }
                if drained.is_empty() {
                    break;
                }
                let mut spec = self.speculate(&drained, sessions, &to_index);
                for (idx, (t2, at, dg)) in drained.iter().enumerate() {
                    let verdict = match spec[idx].take() {
                        Some(s) => self.route(*t2, dg, sessions, &to_index, Some(s)),
                        None => self.route(*t2, dg, sessions, &to_index, None),
                    };
                    match verdict {
                        Some((j, opened)) => {
                            let sj = sessions[j].id;
                            scratch.clear();
                            let driver = &mut self.slots[sj.0].driver;
                            match opened {
                                // Ambiguous address: the routing probe
                                // already opened the datagram — deliver the
                                // plaintext token, never a second decrypt.
                                Some(op) => driver.deliver_opened(
                                    sessions[j].parties,
                                    *at,
                                    dg.from,
                                    dg.to,
                                    op,
                                    &mut scratch,
                                ),
                                None => driver.deliver(sessions[j].parties, *at, dg, &mut scratch),
                            };
                            self.stats.delivered += 1;
                            events.extend(scratch.drain(..).map(|e| (sj, e)));
                            if !woken.contains(&j) {
                                woken.push(j);
                            }
                        }
                        None => {
                            let bounced = self
                                .unclaimed
                                .iter_mut()
                                .find(|(t, _)| *t == *t2)
                                .is_some_and(|(_, hook)| hook(dg));
                            if bounced {
                                self.stats.bounced += 1;
                            } else {
                                self.stats.dropped += 1;
                            }
                        }
                    }
                }
                if drained.len() < RECV_BATCH {
                    break; // the poller ran dry mid-batch
                }
            }

            // The popped session is awake by definition; traffic may have
            // woken others (shared sources). Timeout checks and re-ticks
            // run in lease order for determinism.
            if !woken.contains(&i) {
                woken.push(i);
            }
            woken.sort_unstable();
            for j in woken {
                let sj = sessions[j].id;
                let nowj = self.poller.now(self.slots[sj.0].token);
                scratch.clear();
                self.slots[sj.0]
                    .driver
                    .check_timeouts(sessions[j].parties, nowj, &mut scratch);
                events.extend(scratch.drain(..).map(|e| (sj, e)));
                if nowj < sessions[j].target {
                    self.service(j, nowj, sessions, &mut events, &mut scratch);
                }
            }
        }
        events
    }

    /// One tick-and-rearm step for lease `i` at `now`: tick its parties
    /// (shipping output on its source), then schedule its next wakeup.
    fn service(
        &mut self,
        i: usize,
        now: Millis,
        sessions: &mut [HubSession<'_, '_>],
        events: &mut Vec<(SessionId, SessionEvent)>,
        scratch: &mut Vec<SessionEvent>,
    ) {
        let sid = sessions[i].id;
        let Self {
            poller,
            slots,
            wheel,
            stats,
            checkpoints,
            ..
        } = self;
        let slot = &mut slots[sid.0];
        let tok = slot.token;
        scratch.clear();
        // Each party's burst leaves as one batch — the sendmmsg-shaped
        // seam: the poller's substrate ships it whole when it can.
        slot.driver.tick_parties_batched(
            sessions[i].parties,
            now,
            &mut |from, batch| poller.send_many(tok, from, batch),
            scratch,
        );
        events.extend(scratch.drain(..).map(|e| (sid, e)));

        // Crash-recovery cadence: when this session is tracked, due, and
        // saw traffic since its last checkpoint, snapshot it into the
        // shared store. Runs after the tick so the checkpoint contains
        // everything this service step shipped.
        if let (Some((store, cadence)), Some(ck)) = (checkpoints.as_ref(), slot.ckpt.as_mut()) {
            let due = ck
                .last_at
                .is_none_or(|at| now.saturating_sub(at) >= *cadence);
            if due {
                let marker = sessions[i]
                    .parties
                    .iter()
                    .find_map(|p| p.endpoint.activity_marker());
                if let Some(marker) = marker.filter(|m| ck.last_marker != Some(*m)) {
                    if let Some(body) = sessions[i]
                        .parties
                        .iter_mut()
                        .find_map(|p| p.endpoint.checkpoint(now))
                    {
                        let framed = snapshot::frame(&body);
                        stats.checkpoint_bytes += framed.len() as u64;
                        store.put(ck.key, framed, marker);
                        ck.last_marker = Some(marker);
                    }
                }
                ck.last_at = Some(now);
            }
        }

        let next = slot.driver.next_step(
            sessions[i].parties,
            now,
            sessions[i].target,
            poller.next_event_time(tok),
        );
        slot.gen += 1;
        wheel.schedule(next, sid.0, slot.gen);
    }

    /// Pops the next live wheel entry, skipping stale generations.
    fn pop_due(&mut self) -> Option<(Millis, SessionId)> {
        while let Some(Reverse((due, s, gen))) = self.wheel.heap.pop() {
            if self.slots[s].gen == gen {
                return Some((due, SessionId(s)));
            }
        }
        None
    }

    /// Plans and executes the batched speculative probes for one drained
    /// receive batch — the cross-packet AES/OCB seam on the hub's receive
    /// path. Datagrams that must be routed by authentication *and* whose
    /// source carries a usable hint are grouped by (lease, receiving
    /// party) and opened with **one** [`crate::session::Endpoint::try_open_many`]
    /// call per group, so their AES blocks interleave in the cipher
    /// lanes. Each speculative verdict is exactly the probe [`ServerHub::route`]
    /// would have run first for that datagram; `route` consumes it instead
    /// of re-opening. Cold datagrams (no hint — including every
    /// adversarial injection from an unknown source), raw fast-path
    /// datagrams, and unclaimed addresses are deliberately left out: they
    /// take the sequential path unchanged, preserving the hub's exact
    /// decrypt accounting (one cold probe per new source, zero decrypts on
    /// the private fast path). A failed speculative probe (`None` verdict,
    /// e.g. one tampered wire inside the batch) fails *alone*: its verdict
    /// slot is per-datagram, so siblings in the same cipher call still
    /// deliver.
    fn speculate(
        &self,
        drained: &[(Token, Millis, Datagram)],
        sessions: &mut [HubSession<'_, '_>],
        to_index: &HashMap<(Token, Addr), Vec<usize>>,
    ) -> Vec<Option<(usize, Option<Opened>)>> {
        let mut spec: Vec<Option<(usize, Option<Opened>)>> = Vec::new();
        spec.resize_with(drained.len(), || None);
        // Group the hinted auth-path datagrams by the endpoint their hint
        // front names: (lease index, party position).
        let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (idx, (tok, _, dg)) in drained.iter().enumerate() {
            let Some(cands) = to_index.get(&(*tok, dg.to)) else {
                continue; // unclaimed: never decrypted here
            };
            if cands.len() == 1 && !self.is_shared(*tok) {
                continue; // raw fast path: the hub never decrypts these
            }
            let Some(j) = self.routes.get(&(*tok, dg.from)).and_then(|sids| {
                sids.iter()
                    .find_map(|sid| cands.iter().copied().find(|&j| sessions[j].id == *sid))
            }) else {
                continue; // cold source: sequential probing (the +1 probe)
            };
            let Some(pp) = sessions[j].parties.iter().position(|p| p.addr == dg.to) else {
                continue;
            };
            groups.entry((j, pp)).or_default().push(idx);
        }
        let mut opened: Vec<Option<Opened>> = Vec::new();
        for ((j, pp), idxs) in groups {
            let wires: Vec<&[u8]> = idxs
                .iter()
                .map(|&idx| drained[idx].2.payload.as_slice())
                .collect();
            opened.clear();
            sessions[j].parties[pp]
                .endpoint
                .try_open_many(&wires, &mut opened);
            // Zip stops at the shorter side: a misbehaving endpoint that
            // returns fewer verdicts than wires only downgrades the tail
            // to the sequential path, never mis-attributes a verdict.
            for (&idx, op) in idxs.iter().zip(opened.drain(..)) {
                spec[idx] = Some((j, op));
            }
        }
        spec
    }

    /// Decides which leased session a datagram belongs to, returning the
    /// lease index and — when authentication had to decide — the
    /// already-opened datagram token.
    ///
    /// 1. By receive address, on a **private** source only: if exactly
    ///    one lease claims `(token, to)`, it gets the raw datagram — the
    ///    single-session fast path, identical to `SessionLoop`
    ///    (inauthentic line noise included: the endpoint rejects it
    ///    itself, keeping its counters byte-identical).
    /// 2. Ambiguous receive address (many sessions behind one socket), or
    ///    any datagram on a **distributor-shared** source (see
    ///    [`ServerHub::set_unclaimed`] — other shards' sessions live
    ///    behind it too, so even a lone local candidate proves nothing):
    ///    **authentication decides**, and the deciding decrypt is the only
    ///    one the datagram ever gets — `Endpoint::try_open` keeps the
    ///    verified plaintext, which `pump` then delivers to the winner as
    ///    an opened token. Source-address routes learned from earlier
    ///    authentic traffic order the candidates so the common case opens
    ///    against one key; roaming collisions degrade to trying every
    ///    candidate. No candidate authenticates → unclaimed: bounced to
    ///    the distributor when the source has a hook, dropped otherwise.
    ///
    /// `spec` carries the batched speculative probe for this datagram, if
    /// [`ServerHub::speculate`] ran one: `(lease, verdict)` where the
    /// verdict is what `try_open` against that lease would return. The
    /// probe loop *consumes* it when it reaches that lease — at whatever
    /// hint position the lease occupies by then — so a datagram never
    /// crosses the cipher twice even when an earlier datagram in the same
    /// batch reordered the hints. (The one cost of that rare mid-batch
    /// roam: the moved hint's new front is probed live, one extra decrypt
    /// for that datagram — bounded by one per batch per roam event.)
    fn route(
        &mut self,
        tok: Token,
        dg: &Datagram,
        sessions: &mut [HubSession<'_, '_>],
        to_index: &HashMap<(Token, Addr), Vec<usize>>,
        spec: Option<(usize, Option<Opened>)>,
    ) -> Option<(usize, Option<Opened>)> {
        let cands = to_index.get(&(tok, dg.to))?;
        if cands.len() == 1 && !self.is_shared(tok) {
            return Some((cands[0], None));
        }

        // Hinted candidates first (sessions that previously authenticated
        // traffic from this source), then the rest in lease order.
        let hinted: Vec<usize> = self
            .routes
            .get(&(tok, dg.from))
            .map(|sids| {
                sids.iter()
                    .filter_map(|sid| cands.iter().copied().find(|&j| sessions[j].id == *sid))
                    .collect()
            })
            .unwrap_or_default();
        let rest = cands.iter().copied().filter(|j| !hinted.contains(j));
        let mut spec = spec;
        let mut winner = None;
        for j in hinted.iter().copied().chain(rest) {
            let verdict = if spec.as_ref().is_some_and(|(sj, _)| *sj == j) {
                match spec.take() {
                    Some((_, v)) => v,
                    None => None, // unreachable: guarded by is_some_and
                }
            } else {
                let Some(p) = sessions[j].parties.iter_mut().find(|p| p.addr == dg.to) else {
                    continue;
                };
                p.endpoint.try_open(&dg.payload)
            };
            if let Some(opened) = verdict {
                winner = Some((j, opened));
                break;
            }
        }
        let (j, opened) = winner?;

        self.stats.auth_routed += 1;
        let route = self.routes.entry((tok, dg.from)).or_default();
        if route.first() != Some(&sessions[j].id) {
            route.retain(|sid| *sid != sessions[j].id);
            route.insert(0, sessions[j].id);
        }
        Some((j, Some(opened)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;
    use crate::client::MoshClient;
    use crate::server::MoshServer;
    use crate::session::Party;
    use mosh_crypto::Base64Key;
    use mosh_net::{LinkConfig, Network, Side, SimChannel, SimPoller};
    use mosh_prediction::DisplayPreference;

    const C: Addr = Addr::new(1, 1000);
    const S: Addr = Addr::new(2, 60001);

    fn sim_world(seed: u64) -> SimChannel {
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        net.register(C, Side::Client);
        net.register(S, Side::Server);
        SimChannel::new(net)
    }

    fn pair(key_byte: u8) -> (MoshClient, MoshServer) {
        let key = Base64Key::from_bytes([key_byte; 16]);
        (
            MoshClient::new(key.clone(), S, 80, 24, DisplayPreference::Never),
            MoshServer::new(key, Box::new(LineShell::new())),
        )
    }

    #[test]
    fn hub_drives_many_sessions_to_their_prompts() {
        let mut hub = ServerHub::new(SimPoller::new());
        let mut users: Vec<(SessionId, MoshClient, MoshServer)> = Vec::new();
        for u in 0..5u8 {
            let tok = hub.poller_mut().add(sim_world(u as u64));
            let sid = hub.add_session(tok);
            let (client, server) = pair(u + 1);
            users.push((sid, client, server));
        }

        // One pump drives all five sessions 400 virtual ms.
        let sids: Vec<SessionId> = users.iter().map(|(sid, _, _)| *sid).collect();
        let mut leases: Vec<Vec<Party<'_>>> = Vec::new();
        for (_, client, server) in users.iter_mut() {
            leases.push(vec![Party::new(C, client), Party::new(S, server)]);
        }
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, 400))
            .collect();
        let events = hub.pump(&mut sessions);
        drop(sessions);
        drop(leases);

        for (sid, client, _) in users.iter() {
            assert_eq!(
                client.server_frame().row_text(0),
                "$",
                "session {sid:?} reached its prompt"
            );
            assert_eq!(hub.now(*sid), 400, "its world advanced to the target");
        }
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, SessionEvent::FrameAdvanced { .. })),
            "prompt frames were reported"
        );
        assert!(hub.stats().delivered > 0);
        assert_eq!(hub.stats().dropped, 0);
    }

    #[test]
    fn removed_sessions_release_their_routes_and_cannot_be_leased() {
        let mut hub = ServerHub::new(SimPoller::new());
        let t1 = hub.poller_mut().add(sim_world(21));
        let t2 = hub.poller_mut().add(sim_world(22));
        let s1 = hub.add_session(t1);
        let s2 = hub.add_session(t2);
        assert_eq!(hub.session_count(), 2);

        let (mut c1, mut sv1) = pair(7);
        let mut p1 = [Party::new(C, &mut c1), Party::new(S, &mut sv1)];
        hub.pump(&mut [HubSession::new(s1, &mut p1, 300)]);
        assert_eq!(c1.server_frame().row_text(0), "$");

        hub.remove_session(s1);
        assert_eq!(hub.session_count(), 1);
        assert!(hub.routes.is_empty(), "routes for removed sessions evicted");
        hub.remove_session(s1); // idempotent

        // The survivor still pumps; leasing the retired id panics.
        let (mut c2, mut sv2) = pair(8);
        let mut p2 = [Party::new(C, &mut c2), Party::new(S, &mut sv2)];
        hub.pump(&mut [HubSession::new(s2, &mut p2, 300)]);
        assert_eq!(c2.server_frame().row_text(0), "$");

        let mut p1 = [Party::new(C, &mut c1), Party::new(S, &mut sv1)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hub.pump(&mut [HubSession::new(s1, &mut p1, 600)]);
        }));
        assert!(err.is_err(), "leasing a removed session must panic");
    }

    #[test]
    fn sessions_can_pump_to_different_targets() {
        let mut hub = ServerHub::new(SimPoller::new());
        let t1 = hub.poller_mut().add(sim_world(1));
        let t2 = hub.poller_mut().add(sim_world(2));
        let s1 = hub.add_session(t1);
        let s2 = hub.add_session(t2);
        let (mut c1, mut sv1) = pair(1);
        let (mut c2, mut sv2) = pair(2);

        let mut p1 = [Party::new(C, &mut c1), Party::new(S, &mut sv1)];
        let mut p2 = [Party::new(C, &mut c2), Party::new(S, &mut sv2)];
        hub.pump(&mut [
            HubSession::new(s1, &mut p1, 250),
            HubSession::new(s2, &mut p2, 700),
        ]);
        assert_eq!(hub.now(s1), 250);
        assert_eq!(hub.now(s2), 700);
    }
}
