//! The sharded multi-threaded hub runtime.
//!
//! [`ShardedHub`] scales the single-threaded [`ServerHub`] across cores:
//! N worker threads, each owning a **private** shard (poller + timer
//! wheel + sessions), fed by a sharding front end that assigns sessions
//! to shards at accept time. Nothing is locked on the datagram path —
//! sessions are independent worlds behind tokens, endpoints are `Send`,
//! and a shard's poller sources are touched by exactly one thread at a
//! time — so per-session behavior is **byte-identical to the
//! single-threaded hub for every shard count** (pinned by
//! `tests/sharded_hub.rs` and the sharded decrypt-once suite).
//!
//! Datagram routing is layered exactly as in one hub:
//!
//! * **Private sources** (a simulated world per session, or a socket per
//!   shard): the owning shard routes by receive address, source hint,
//!   and cryptographic authentication — the [`ServerHub`] demux,
//!   unchanged. Sessions sharing one source (many users behind one
//!   socket or one emulated NAT world) are co-located on that source's
//!   shard at accept time, so their ambiguous-address datagrams are
//!   still OCB-opened exactly once by the winning session's probe.
//! * **A source shared by all shards** (one UDP port for the whole
//!   server): a `mosh_net::UdpDistributor` owns the socket and feeds
//!   per-shard SPSC queues, routing by authenticated source hints; a
//!   datagram its first shard cannot authenticate is *bounced* back
//!   (via the shard's unclaimed-datagram hook, never counted dropped)
//!   and fanned out to the next shard. The winning shard's `try_open`
//!   probe keeps the verified plaintext — the `Opened` token is `Send`
//!   and crosses the shard boundary as the delivery itself, so the
//!   fan-out never decrypts a datagram twice.
//!
//! Worker threads are **persistent**: spawned once on the first
//! threaded pump and parked on their command channels between pumps
//! (spawn/join per pump would tax exactly the mostly-idle fleets SSP is
//! built for). Each pump sends every involved shard a job — a borrow of
//! that shard and its leases for the duration of the pump — and blocks
//! until every shard has replied, so the caller still owns every
//! endpoint and injects keystrokes between pumps, exactly as with one
//! hub. One shard runs inline (a `ShardedHub` of 1 *is* a `ServerHub`,
//! thread overhead included); dropping the hub shuts the workers down.
//!
//! A panicking endpoint costs its **shard**, not the hub: the worker
//! catches the panic, the shard is quarantined (its sessions stop; see
//! [`ShardedHub::shard_error`] and `HubStats::shard_panics`), and every
//! other shard keeps pumping.

use super::shard::ServerHub;
use super::snapshot::CheckpointStore;
use super::{HubSession, HubStats, SessionId};
use crate::session::SessionEvent;
use crate::Millis;
use mosh_net::{
    Channel, ChannelPoller, DistributorStatsHandle, FeedChannel, Poller, Token, UdpDistributor,
};
use std::collections::HashMap;
use std::io;
use std::net::UdpSocket;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// What one pump round hands a shard worker: type-erased borrows of the
/// shard and its lease vector, plus the monomorphized entry point that
/// knows their real types. Erasure is what lets the persistent workers
/// stay non-generic (one runtime type for every poller) and outlive any
/// single pump's lease lifetimes.
///
/// # Safety
///
/// The pointers borrow data owned by the pumping thread's stack frame.
/// Sending them is sound because [`ShardedHub::pump_inner`] blocks on
/// every dispatched shard's reply before returning — the borrows cannot
/// be outlived — and is `Send`-correct because jobs are only built in
/// the `P: Poller + Send` impl (checked by `assert_send` at the build
/// site, since erasure hides the payload types from the compiler).
struct PumpJob {
    run: unsafe fn(*mut (), *mut ()) -> Vec<(SessionId, SessionEvent)>,
    shard: *mut (),
    leases: *mut (),
}

// SAFETY: see the `# Safety` section above — the raw borrows a job
// carries live until the dispatching frame has collected the worker's
// reply, and the build site proves the erased payloads are `Send`.
unsafe impl Send for PumpJob {}

/// The monomorphized shim a [`PumpJob`] carries: recover the real types
/// and pump.
///
/// # Safety
///
/// `shard` must point at a live `ServerHub<P>` and `leases` at a live
/// `Vec<HubSession>`, each borrowed exclusively for this call (upheld by
/// the dispatch/reply protocol described on [`PumpJob`]).
unsafe fn pump_erased<P: Poller>(
    shard: *mut (),
    leases: *mut (),
) -> Vec<(SessionId, SessionEvent)> {
    let shard = &mut *(shard as *mut ServerHub<P>);
    let leases = &mut *(leases as *mut Vec<HubSession<'static, 'static>>);
    shard.pump(leases)
}

enum Command {
    Pump(PumpJob),
    Shutdown,
}

/// One pump's outcome from one worker: the shard's events, or the
/// message of the panic that killed it.
type PumpReply = Result<Vec<(SessionId, SessionEvent)>, String>;

/// One persistent shard worker: a parked thread plus its command and
/// reply channels.
struct ShardWorker {
    tx: SyncSender<Command>,
    reply: Receiver<PumpReply>,
    handle: Option<JoinHandle<()>>,
}

/// The persistent worker pool, spawned lazily on the first threaded
/// pump (a hub that only ever pumps one shard inline never starts a
/// thread). Dropping it is the clean shutdown: every worker is sent
/// [`Command::Shutdown`] and joined.
struct ShardRuntime {
    workers: Vec<ShardWorker>,
}

impl ShardRuntime {
    fn spawn(shards: usize) -> Self {
        let workers = (0..shards)
            .map(|i| {
                // Depth 1 is exact, not just bounded: the dispatch/reply
                // protocol keeps at most one command (and one reply) in
                // flight per worker, so neither send can ever block.
                let (tx, rx) = sync_channel::<Command>(1);
                let (reply_tx, reply) = sync_channel::<PumpReply>(1);
                let handle = std::thread::Builder::new()
                    .name(format!("mosh-shard-{i}"))
                    .spawn(move || worker_loop(rx, reply_tx))
                    // mosh-lint: allow(no-unwrap-hot-path): OS thread-spawn failure at the first threaded pump, before any session state exists to preserve
                    .expect("spawn shard worker");
                ShardWorker {
                    tx,
                    reply,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardRuntime { workers }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        for w in &self.workers {
            // A worker already gone (channel closed) is fine: the join
            // below reaps it either way.
            let _ = w.tx.send(Command::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The worker body: park on the command channel, pump on demand, and
/// **always** reply — a caught panic becomes an `Err` reply, never a
/// missing one, because the pumping thread blocks on every reply before
/// releasing the borrows the job carries.
fn worker_loop(rx: Receiver<Command>, reply: SyncSender<PumpReply>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Pump(job) => {
                // SAFETY: the job was built this pump round from live
                // exclusive borrows (see `PumpJob`'s Safety section);
                // the dispatcher blocks on our reply before releasing
                // them, so the pointers are valid for this whole call.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe {
                    (job.run)(job.shard, job.leases)
                }))
                .map_err(panic_message);
                if reply.send(result).is_err() {
                    // The hub is gone mid-pump (its thread is unwinding);
                    // nothing left to serve.
                    return;
                }
            }
            Command::Shutdown => return,
        }
    }
}

/// Renders a caught panic payload (`panic!` carries `&str` or `String`;
/// anything else is opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The sharding front end: N worker threads, each a private [`ServerHub`].
pub struct ShardedHub<P: Poller> {
    shards: Vec<ServerHub<P>>,
    /// Global session id → (owning shard, its local id there). `None`
    /// is a tombstone: the session was removed, or lost with its
    /// quarantined shard. The *global* id is stable for a session's
    /// whole life — migration and resurrection rewrite the mapping, not
    /// the id.
    sessions: Vec<Option<(usize, SessionId)>>,
    /// Accept-time assignment cursor (round-robin).
    next_shard: usize,
    /// Per-shard token of the distributor-shared source, when one exists.
    shared: Vec<Token>,
    /// The persistent worker pool, spawned on the first threaded pump
    /// and shut down (signal + join) when the hub drops.
    runtime: Option<ShardRuntime>,
    /// Per-shard quarantine: the panic message once an endpoint panic
    /// killed that shard's pump. A quarantined shard is skipped by later
    /// pumps — its state is suspect — while every other shard keeps
    /// serving its sessions.
    failed: Vec<Option<String>>,
    /// Live distributor counters when built over a shared socket
    /// ([`ShardedHub::over_distributor`]); folded into
    /// [`ShardedHub::stats`] so feed-queue shedding is operator-visible.
    dist_stats: Option<DistributorStatsHandle>,
    /// Crash-recovery config mirrored from the shards (see
    /// [`ShardedHub::enable_checkpointing`]): the shared store and the
    /// per-session checkpoint cadence.
    checkpoints: Option<(CheckpointStore, Millis)>,
    /// Router-level recovery counters, folded into [`ShardedHub::stats`].
    migrated: u64,
    resurrected: u64,
}

impl<P: Poller> ShardedHub<P> {
    /// A sharded hub over one poller per worker thread.
    pub fn new(pollers: Vec<P>) -> Self {
        assert!(!pollers.is_empty(), "a hub needs at least one shard");
        let n = pollers.len();
        ShardedHub {
            shards: pollers.into_iter().map(ServerHub::new).collect(),
            sessions: Vec::new(),
            next_shard: 0,
            shared: Vec::new(),
            runtime: None,
            failed: vec![None; n],
            dist_stats: None,
            checkpoints: None,
            migrated: 0,
            resurrected: 0,
        }
    }

    /// A sharded hub of `n` shards built by `make` (e.g.
    /// `ShardedHub::with_shards(4, SimPoller::new)`).
    pub fn with_shards(n: usize, mut make: impl FnMut() -> P) -> Self {
        Self::new((0..n).map(|_| make()).collect())
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard (its poller carries network stats, socket addresses, …).
    pub fn shard(&self, i: usize) -> &ServerHub<P> {
        &self.shards[i]
    }

    /// Mutable shard access (register sources, rebind sockets, inject
    /// emulator traffic in tests, …).
    pub fn shard_mut(&mut self, i: usize) -> &mut ServerHub<P> {
        &mut self.shards[i]
    }

    /// Accepts a session living on its own private source: the session
    /// is assigned to a shard **at accept time** (round-robin) and the
    /// source is registered on that shard's poller. Returns the global
    /// session id.
    pub fn add_session(&mut self, channel: P::Chan) -> SessionId {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        let tok = self.shards[shard].poller_mut().add(channel);
        self.add_session_on(shard, tok)
    }

    /// Accepts a session sharing the source (and therefore the shard) of
    /// an existing session — many sessions behind one socket or one
    /// emulated world. Co-location is what keeps a shared source owned
    /// by exactly one thread; the shard's demux handles the ambiguity
    /// exactly as a single-threaded hub would.
    pub fn add_session_sharing(&mut self, with: SessionId) -> SessionId {
        let (shard, local) = self.location(with);
        let tok = self.shards[shard].token_of(local);
        self.add_session_on(shard, tok)
    }

    /// Accepts a session on an explicit shard and source token (the
    /// low-level accept path the other accessors build on).
    pub fn add_session_on(&mut self, shard: usize, tok: Token) -> SessionId {
        let local = self.shards[shard].add_session(tok);
        let sid = SessionId(self.sessions.len());
        if self.checkpoints.is_some() {
            self.shards[shard].set_checkpoint_key(local, sid.0);
        }
        self.sessions.push(Some((shard, local)));
        sid
    }

    /// The shard a session lives on and its local id there. Panics for
    /// a removed (or lost-with-its-shard) session, like leasing one.
    pub fn location(&self, sid: SessionId) -> (usize, SessionId) {
        match self.sessions[sid.0] {
            Some(loc) => loc,
            // mosh-lint: allow(no-unwrap-hot-path): caller bug — using a retired SessionId, like an out-of-range token
            None => panic!("session {sid:?} was removed"),
        }
    }

    /// Retires a session (see [`ServerHub::remove_session`]), and evicts
    /// any substrate routing state learned for it — for a session behind
    /// the shared socket, the distributor's source hints
    /// ([`mosh_net::Channel::evict_hint`]), which would otherwise grow
    /// with every client address ever served and cost later traffic from
    /// a reused address an extra bounce hop.
    pub fn remove_session(&mut self, sid: SessionId) {
        let Some((shard, local)) = self.sessions[sid.0].take() else {
            return; // already removed (idempotent, like the shard's own)
        };
        if self.failed[shard].is_some() {
            // The owning shard is quarantined: never dispatch into its
            // suspect state. Tombstoning the mapping is the removal —
            // the shard's sessions are no longer pumped anyway — and
            // dropping the checkpoint guarantees the session can't come
            // back through `resurrect_quarantined`.
            if let Some((store, _)) = &self.checkpoints {
                store.remove(sid.0);
            }
            return;
        }
        let evicted = self.shards[shard].remove_session(local);
        for (tok, addr) in evicted {
            self.shards[shard]
                .poller_mut()
                .channel_mut(tok)
                .evict_hint(addr);
        }
    }

    /// Configures a session's peer-silence timeout.
    pub fn set_peer_timeout(&mut self, sid: SessionId, timeout: Option<Millis>) {
        let (shard, local) = self.location(sid);
        self.shards[shard].set_peer_timeout(local, timeout);
    }

    /// Number of sessions registered and not yet removed, over all
    /// **healthy** shards — a quarantined shard's sessions are not being
    /// served (resurrect them to count again).
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .zip(self.failed.iter())
            .filter(|(_, f)| f.is_none())
            .map(|(s, _)| s.session_count())
            .sum()
    }

    /// Current time on a session's source clock.
    pub fn now(&self, sid: SessionId) -> Millis {
        let (shard, local) = self.location(sid);
        self.shards[shard].now(local)
    }

    /// Aggregated counters over all shards, the quarantine count, and —
    /// when the hub answers on a shared socket — the distributor's
    /// routing/shedding counters and hint gauge.
    pub fn stats(&self) -> HubStats {
        let mut total = HubStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.shard_loads.push(super::ShardLoad {
                wakeups: st.wakeups,
                deliveries: st.delivered,
            });
            total.add(st);
        }
        total.shard_panics = self.failed.iter().filter(|f| f.is_some()).count() as u64;
        total.sessions_migrated = self.migrated;
        total.sessions_resurrected = self.resurrected;
        if let Some(h) = &self.dist_stats {
            let d = h.snapshot();
            total.feed_overflow = d.overflow;
            total.feed_bounced = d.bounced;
            total.feed_dropped = d.dropped;
            total.feed_hints = h.hint_count() as u64;
        }
        total
    }

    /// The panic message that quarantined shard `i`, if any. A
    /// quarantined shard's sessions are no longer pumped (its state is
    /// suspect after the unwind); every other shard is unaffected.
    pub fn shard_error(&self, i: usize) -> Option<&str> {
        self.failed[i].as_deref()
    }

    /// Turns on crash recovery: every shard checkpoints its tracked
    /// sessions into one shared [`CheckpointStore`] at most every
    /// `cadence` ms of session time (idle sessions cost nothing — see
    /// [`ServerHub::enable_checkpointing`]). Sessions are tracked under
    /// their **global** ids, which survive migration and resurrection.
    /// Returns a handle to the store (it is `Clone`; the hub keeps one).
    pub fn enable_checkpointing(&mut self, cadence: Millis) -> CheckpointStore {
        let store = CheckpointStore::new();
        for shard in &mut self.shards {
            shard.enable_checkpointing(store.clone(), cadence);
        }
        for (gid, entry) in self.sessions.iter().enumerate() {
            if let Some((shard, local)) = *entry {
                self.shards[shard].set_checkpoint_key(local, gid);
            }
        }
        self.checkpoints = Some((store.clone(), cadence));
        store
    }

    /// The shared checkpoint store, when crash recovery is on.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.checkpoints.as_ref().map(|(s, _)| s)
    }

    /// Moves a live session to `to_shard` between pumps: its scheduling
    /// state and its channel move; its endpoints stay with the caller,
    /// untouched, so the transcript is **byte-identical** to never
    /// having moved. The global id is stable — the caller keeps leasing
    /// the same [`SessionId`].
    ///
    /// Returns false (and moves nothing) when the move is impossible:
    /// either shard quarantined, the session removed, the session
    /// co-located with others on one private source (they move together
    /// or not at all), or the poller unable to release the channel.
    /// A session behind the shared distributor socket re-homes onto the
    /// destination shard's own feed instead of moving a channel.
    pub fn migrate_session(&mut self, sid: SessionId, to_shard: usize) -> bool {
        let Some((shard, local)) = self.sessions[sid.0] else {
            return false;
        };
        if self.failed[shard].is_some() || self.failed[to_shard].is_some() {
            return false;
        }
        if shard == to_shard {
            return true;
        }
        let tok = self.shards[shard].token_of(local);
        let is_dist = self.shared.get(shard) == Some(&tok);
        if !is_dist && self.shards[shard].sessions_on(tok) > 1 {
            return false;
        }
        let Some(ex) = self.shards[shard].extract_session(local) else {
            return false;
        };
        // Evict substrate hints the old shard learned for this session
        // (same contract as removal): stale hints would keep steering
        // the client's datagrams at a shard that no longer claims them.
        for (t, addr) in &ex.evicted_routes {
            self.shards[shard]
                .poller_mut()
                .channel_mut(*t)
                .evict_hint(*addr);
        }
        let new_tok = if is_dist {
            self.shared[to_shard]
        } else {
            match self.shards[shard].poller_mut().extract(tok) {
                Some(chan) => self.shards[to_shard].poller_mut().add(chan),
                None => {
                    // The poller cannot release the channel: undo — the
                    // session re-registers on its old shard, unharmed.
                    let relocal = self.shards[shard].add_session_with_driver(tok, ex.driver);
                    if let Some(k) = ex.ckpt_key {
                        self.shards[shard].set_checkpoint_key(relocal, k);
                    }
                    self.sessions[sid.0] = Some((shard, relocal));
                    return false;
                }
            }
        };
        let new_local = self.shards[to_shard].add_session_with_driver(new_tok, ex.driver);
        if let Some(k) = ex.ckpt_key {
            self.shards[to_shard].set_checkpoint_key(new_local, k);
        }
        self.sessions[sid.0] = Some((to_shard, new_local));
        self.migrated += 1;
        true
    }

    /// Load-aware rebalancing: migrates sessions from the most-loaded
    /// healthy shard to the least-loaded until the spread is at most
    /// one session (or no remaining session can move — co-location and
    /// unextractable channels are respected, never forced). Returns how
    /// many sessions moved.
    pub fn rebalance(&mut self) -> usize {
        let mut moved = 0;
        loop {
            let mut max_s = None;
            let mut min_s = None;
            for i in 0..self.shards.len() {
                if self.failed[i].is_some() {
                    continue;
                }
                let c = self.shards[i].session_count();
                if max_s.is_none_or(|(_, mc)| c > mc) {
                    max_s = Some((i, c));
                }
                if min_s.is_none_or(|(_, mc)| c < mc) {
                    min_s = Some((i, c));
                }
            }
            let (Some((from, fc)), Some((to, tc))) = (max_s, min_s) else {
                break;
            };
            if fc <= tc + 1 {
                break; // balanced: no move can reduce the spread
            }
            let candidate = (0..self.sessions.len()).find(|&gid| {
                self.sessions[gid].is_some_and(|(s, _)| s == from)
                    && self.migrate_session(SessionId(gid), to)
            });
            if candidate.is_none() {
                break; // nothing on the loaded shard can move
            }
            moved += 1;
        }
        moved
    }

    /// Crash recovery: re-registers every quarantined shard's sessions
    /// on healthy shards from their last checkpoints, returning each
    /// recovered session's global id and framed snapshot. The *caller*
    /// owns the endpoints, so rebuilding them is the caller's half:
    /// decode each snapshot with [`super::snapshot::resurrect_server`]
    /// (which burns the nonce gap a stale checkpoint demands) and lease
    /// the new endpoint under the same [`SessionId`] from the next pump
    /// on. Client endpoints never crashed and are kept as they are —
    /// input the checkpoint missed is still unacked (the checkpoint
    /// capped the acks), so the client retransmits it into the
    /// resurrected server like any Mosh loss episode.
    ///
    /// Sessions with no checkpoint (never serviced while checkpointing
    /// was on, or checkpointing off entirely) are **lost**: their
    /// mapping is tombstoned. Sessions sharing one private channel stay
    /// co-located on their new shard. The quarantined shards stay
    /// quarantined — their remaining state is still suspect.
    pub fn resurrect_quarantined(&mut self) -> Vec<(SessionId, Vec<u8>)> {
        let store = match &self.checkpoints {
            Some((store, _)) => store.clone(),
            None => return Vec::new(),
        };
        let healthy: Vec<usize> = (0..self.shards.len())
            .filter(|&i| self.failed[i].is_none())
            .collect();
        if healthy.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut rr = 0usize;
        // Where each dead shard's channel went, so co-located sessions
        // land together: (old shard, old token) → (new shard, new token).
        let mut rehomed: HashMap<(usize, Token), (usize, Token)> = HashMap::new();
        for gid in 0..self.sessions.len() {
            let Some((shard, local)) = self.sessions[gid] else {
                continue;
            };
            if self.failed[shard].is_none() {
                continue;
            }
            let Some(framed) = store.get(gid) else {
                self.sessions[gid] = None; // no checkpoint: lost
                continue;
            };
            let old_tok = self.shards[shard].token_of(local);
            let (target, new_tok) = if self.shared.get(shard) == Some(&old_tok) {
                // Distributor-fed: adopt the target shard's own feed.
                let target = healthy[rr % healthy.len()];
                rr += 1;
                (target, self.shared[target])
            } else if let Some(&home) = rehomed.get(&(shard, old_tok)) {
                home // co-located sibling: follow the channel
            } else {
                // The channel object itself survived the panic (the
                // unwind was in endpoint code; the poller's sources were
                // not mid-mutation) — pull it out of the dead shard.
                match self.shards[shard].poller_mut().extract(old_tok) {
                    Some(chan) => {
                        let target = healthy[rr % healthy.len()];
                        rr += 1;
                        let t = self.shards[target].poller_mut().add(chan);
                        rehomed.insert((shard, old_tok), (target, t));
                        (target, t)
                    }
                    None => {
                        self.sessions[gid] = None; // channel unrecoverable
                        continue;
                    }
                }
            };
            let new_local = self.shards[target].add_session(new_tok);
            if self.checkpoints.is_some() {
                self.shards[target].set_checkpoint_key(new_local, gid);
            }
            self.sessions[gid] = Some((target, new_local));
            self.resurrected += 1;
            out.push((SessionId(gid), framed));
        }
        out
    }
}

impl<P: Poller + Send> ShardedHub<P> {
    /// Drives every leased session until its own target — each shard's
    /// sessions on that shard's worker thread — returning all events
    /// tagged by **global** session id, grouped by shard in shard order
    /// (cross-shard ordering carries no meaning: shards are independent
    /// worlds, exactly as a poller's sources already are).
    ///
    /// Per-session semantics are exactly [`ServerHub::pump`]'s; a hub of
    /// one shard pumps inline with no thread at all.
    pub fn pump(&mut self, sessions: &mut [HubSession<'_, '_>]) -> Vec<(SessionId, SessionEvent)> {
        self.pump_inner(sessions, None::<fn()>)
    }

    /// Like [`ShardedHub::pump`], running `side` on the calling thread
    /// *while* the shards pump — the seat of a `UdpDistributor` draining
    /// a shared socket for the duration of the pump. Because `side` must
    /// genuinely run concurrently (a blocked shard may be waiting on a
    /// datagram only `side` can feed it), every shard gets a worker
    /// thread here, even a lone one — the inline fast path belongs to
    /// [`ShardedHub::pump`] alone.
    pub fn pump_with(
        &mut self,
        sessions: &mut [HubSession<'_, '_>],
        side: impl FnOnce(),
    ) -> Vec<(SessionId, SessionEvent)> {
        self.pump_inner(sessions, Some(side))
    }

    fn pump_inner(
        &mut self,
        sessions: &mut [HubSession<'_, '_>],
        side: Option<impl FnOnce()>,
    ) -> Vec<(SessionId, SessionEvent)> {
        // Partition leases by owning shard — quarantined shards are
        // skipped (their state is suspect after a caught panic; every
        // healthy shard keeps serving) — remembering the local→global
        // mapping for the event tags.
        let n = self.shards.len();
        let mut shard_leases: Vec<Vec<HubSession<'_, '_>>> = (0..n).map(|_| Vec::new()).collect();
        let mut to_global: Vec<HashMap<SessionId, SessionId>> =
            (0..n).map(|_| HashMap::new()).collect();
        for s in sessions.iter_mut() {
            let Some((shard, local)) = self.sessions[s.id.0] else {
                // mosh-lint: allow(no-unwrap-hot-path): caller bug — leasing a retired SessionId, like an out-of-range token
                panic!("session {:?} was removed", s.id);
            };
            if self.failed[shard].is_some() {
                continue;
            }
            to_global[shard].insert(local, s.id);
            shard_leases[shard].push(HubSession::new(local, &mut *s.parties, s.target));
        }

        if n == 1 && side.is_none() {
            // The inline fast path: no runtime, no thread — but the same
            // panic contract as the workers (an endpoint panic
            // quarantines the shard, it does not unwind the caller).
            let shard = &mut self.shards[0];
            let leases = &mut shard_leases[0];
            let events = match catch_unwind(AssertUnwindSafe(|| shard.pump(leases))) {
                Ok(events) => events,
                Err(payload) => {
                    self.failed[0] = Some(panic_message(payload));
                    Vec::new()
                }
            };
            return events
                .into_iter()
                .map(|(local, ev)| (to_global[0][&local], ev))
                .collect();
        }

        // The jobs carry type-erased borrows, so restate here what the
        // compiler can no longer see at the channel boundary: everything
        // a worker touches is Send.
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&self.shards);
        assert_send(&shard_leases);

        // Dispatch one job per involved shard to the persistent workers
        // (spawned on first use), run `side` on this thread while they
        // pump, then block for every reply — the borrows the jobs carry
        // must not outlive this frame. Shards with no leases this pump
        // stay parked on their command channels, like unleased sessions.
        let runtime = self.runtime.get_or_insert_with(|| ShardRuntime::spawn(n)) as &ShardRuntime;
        let mut dispatched = vec![false; n];
        let mut new_failures: Vec<(usize, String)> = Vec::new();
        for (i, leases) in shard_leases.iter_mut().enumerate() {
            if leases.is_empty() {
                continue;
            }
            let job = PumpJob {
                run: pump_erased::<P>,
                shard: &mut self.shards[i] as *mut ServerHub<P> as *mut (),
                leases: leases as *mut Vec<HubSession<'_, '_>> as *mut (),
            };
            if runtime.workers[i].tx.send(Command::Pump(job)).is_ok() {
                dispatched[i] = true;
            } else {
                // The worker's thread is gone (torn down externally):
                // quarantine the shard like a panic and keep pumping
                // the others rather than taking down the whole hub.
                new_failures.push((i, "shard worker disconnected".to_string()));
            }
        }

        // `side` may itself panic (it is arbitrary caller code): the
        // replies must still be collected first, or the workers could
        // touch freed lease memory while this frame unwinds.
        let side_outcome = side.map(|f| catch_unwind(AssertUnwindSafe(f)));

        let mut per_shard: Vec<Vec<(SessionId, SessionEvent)>> = Vec::with_capacity(n);
        for (i, worker) in runtime.workers.iter().enumerate() {
            if !dispatched[i] {
                per_shard.push(Vec::new());
                continue;
            }
            per_shard.push(match worker.reply.recv() {
                Ok(Ok(events)) => events,
                Ok(Err(msg)) => {
                    new_failures.push((i, msg));
                    Vec::new()
                }
                // The worker died without replying — only possible if
                // its thread was torn down externally. Quarantine, same
                // as a panic.
                Err(_) => {
                    new_failures.push((i, "shard worker disconnected".to_string()));
                    Vec::new()
                }
            });
        }
        for (i, msg) in new_failures {
            self.failed[i] = Some(msg);
        }
        if let Some(Err(payload)) = side_outcome {
            resume_unwind(payload);
        }

        per_shard
            .into_iter()
            .enumerate()
            .flat_map(|(i, events)| {
                let map = &to_global[i];
                events.into_iter().map(move |(local, ev)| (map[&local], ev))
            })
            .collect()
    }
}

impl ShardedHub<ChannelPoller<FeedChannel>> {
    /// A sharded hub whose shards all answer on **one** UDP socket: the
    /// socket is split into a [`UdpDistributor`] (drain it with
    /// [`UdpDistributor::pump`], typically inside
    /// [`ShardedHub::pump_with`]'s `side`) plus one queue-fed source per
    /// shard. Each shard's unclaimed-datagram hook is wired to bounce
    /// foreign wires back to the distributor, completing the cross-shard
    /// authentication fan-out.
    pub fn over_distributor(
        socket: UdpSocket,
        shards: usize,
    ) -> io::Result<(Self, UdpDistributor)> {
        Self::over_distributor_with_capacity(socket, shards, mosh_net::FEED_CAPACITY)
    }

    /// [`ShardedHub::over_distributor`] with an explicit per-shard feed
    /// queue bound (see `UdpDistributor::with_capacity`): a shard more
    /// than `capacity` datagrams behind sheds new arrivals, counted in
    /// `HubStats::feed_overflow`.
    pub fn over_distributor_with_capacity(
        socket: UdpSocket,
        shards: usize,
        capacity: usize,
    ) -> io::Result<(Self, UdpDistributor)> {
        let (dist, feeds) = UdpDistributor::with_capacity(socket, shards, capacity)?;
        let mut hub = ShardedHub {
            shards: Vec::with_capacity(feeds.len()),
            sessions: Vec::new(),
            next_shard: 0,
            shared: Vec::with_capacity(feeds.len()),
            runtime: None,
            failed: vec![None; feeds.len()],
            dist_stats: Some(dist.stats_handle()),
            checkpoints: None,
            migrated: 0,
            resurrected: 0,
        };
        for feed in feeds {
            let bouncer = feed.bouncer();
            let mut poller = ChannelPoller::new();
            let tok = poller.add(feed);
            let mut shard = ServerHub::new(poller);
            // Only the shared source bounces; a private source's
            // unclaimed traffic is line noise, dropped as always. The
            // hook also marks the source shared, so the shard always
            // routes it by authentication — even with a single local
            // session, a foreign client's datagram must bounce onward
            // rather than be swallowed by the wrong endpoint.
            shard.set_unclaimed(tok, Box::new(move |dg| bouncer.bounce(dg)));
            hub.shards.push(shard);
            hub.shared.push(tok);
        }
        Ok((hub, dist))
    }

    /// Accepts a session behind the shared socket, assigned to a shard
    /// round-robin at accept time.
    pub fn add_distributed_session(&mut self) -> SessionId {
        assert!(
            !self.shared.is_empty(),
            "no distributor: build with over_distributor"
        );
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        self.add_session_on(shard, self.shared[shard])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;
    use crate::client::MoshClient;
    use crate::server::MoshServer;
    use crate::session::Party;
    use mosh_crypto::Base64Key;
    use mosh_net::{LinkConfig, Network, Side, SimChannel, SimPoller};
    use mosh_prediction::DisplayPreference;

    const C: Addr = Addr::new(1, 1000);
    const S: Addr = Addr::new(2, 60001);
    use mosh_net::Addr;

    fn sim_world(seed: u64) -> SimChannel {
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        net.register(C, Side::Client);
        net.register(S, Side::Server);
        SimChannel::new(net)
    }

    fn pair(key_byte: u8) -> (MoshClient, MoshServer) {
        let key = Base64Key::from_bytes([key_byte; 16]);
        (
            MoshClient::new(key.clone(), S, 80, 24, DisplayPreference::Never),
            MoshServer::new(key, Box::new(LineShell::new())),
        )
    }

    /// The whole sharded runtime is Send: shards (with their pollers,
    /// drivers, and boxed hooks) can move to worker threads.
    #[test]
    fn sharded_runtime_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ServerHub<SimPoller>>();
        assert_send::<ShardedHub<SimPoller>>();
        assert_send::<MoshClient>();
        assert_send::<MoshServer>();
        assert_send::<mosh_ssp::datagram::Opened>();
    }

    #[test]
    fn shards_drive_sessions_to_their_prompts_in_parallel() {
        for shards in [1usize, 2, 3] {
            let mut hub = ShardedHub::with_shards(shards, SimPoller::new);
            let mut users = Vec::new();
            let mut sids = Vec::new();
            for u in 0..5u8 {
                sids.push(hub.add_session(sim_world(u as u64)));
                users.push(pair(u + 1));
            }
            // Round-robin accept spreads sessions over every shard.
            assert_eq!(hub.session_count(), 5);
            assert!((0..5).all(|i| hub.location(sids[i]).0 == (i % shards)));

            let mut leases: Vec<Vec<Party<'_>>> = Vec::new();
            for (client, server) in users.iter_mut() {
                leases.push(vec![Party::new(C, client), Party::new(S, server)]);
            }
            let mut sessions: Vec<HubSession<'_, '_>> = leases
                .iter_mut()
                .zip(sids.iter())
                .map(|(parties, sid)| HubSession::new(*sid, parties, 400))
                .collect();
            let events = hub.pump(&mut sessions);
            drop(sessions);
            drop(leases);

            for (sid, (client, _)) in sids.iter().zip(users.iter()) {
                assert_eq!(client.server_frame().row_text(0), "$");
                assert_eq!(hub.now(*sid), 400);
            }
            assert!(events
                .iter()
                .any(|(_, e)| matches!(e, SessionEvent::FrameAdvanced { .. })));
            assert!(hub.stats().delivered > 0);
            assert_eq!(hub.stats().dropped, 0);

            // Per-shard load signals: one entry per shard, and the
            // entries sum back to the aggregate counters.
            let stats = hub.stats();
            assert_eq!(stats.shard_loads.len(), shards);
            assert_eq!(
                stats.shard_loads.iter().map(|l| l.wakeups).sum::<u64>(),
                stats.wakeups
            );
            assert_eq!(
                stats.shard_loads.iter().map(|l| l.deliveries).sum::<u64>(),
                stats.delivered
            );
            // Round-robin accept spread real work over every shard.
            assert!(stats.shard_loads.iter().all(|l| l.wakeups > 0));
        }
    }

    /// An endpoint whose first timer tick panics — the injected fault
    /// for the quarantine tests.
    struct PanicEndpoint;

    impl crate::session::Endpoint for PanicEndpoint {
        fn receive(&mut self, _: Millis, _: Addr, _: &[u8], _: &mut Vec<SessionEvent>) {}

        fn tick(&mut self, _: Millis, _: &mut Vec<(Addr, Vec<u8>)>, _: &mut Vec<SessionEvent>) {
            panic!("injected endpoint panic");
        }

        fn next_wakeup(&self, now: Millis) -> Millis {
            now
        }
    }

    #[test]
    fn panicking_endpoint_quarantines_its_shard_not_the_hub() {
        let mut hub = ShardedHub::with_shards(2, SimPoller::new);
        // Round-robin: sessions 0 and 2 land on shard 0 (healthy pairs),
        // session 1 on shard 1 (the bomb).
        let healthy_a = hub.add_session(sim_world(1));
        let doomed = hub.add_session(sim_world(2));
        let healthy_b = hub.add_session(sim_world(3));
        assert_eq!(hub.location(doomed).0, 1);

        let (mut client_a, mut server_a) = pair(1);
        let (mut client_b, mut server_b) = pair(2);
        let mut bomb = PanicEndpoint;
        let mut parties_a = vec![Party::new(C, &mut client_a), Party::new(S, &mut server_a)];
        let mut parties_b = vec![Party::new(C, &mut client_b), Party::new(S, &mut server_b)];
        let mut parties_doomed = vec![Party::new(C, &mut bomb)];
        let mut sessions = vec![
            HubSession::new(healthy_a, &mut parties_a, 400),
            HubSession::new(doomed, &mut parties_doomed, 400),
            HubSession::new(healthy_b, &mut parties_b, 400),
        ];

        // The pump must return, not unwind: the panic costs shard 1 only.
        let events = hub.pump(&mut sessions);
        drop(sessions);
        assert!(events
            .iter()
            .all(|(sid, _)| *sid == healthy_a || *sid == healthy_b));
        assert_eq!(hub.stats().shard_panics, 1);
        assert_eq!(hub.shard_error(0), None);
        assert!(hub
            .shard_error(1)
            .expect("shard 1 quarantined")
            .contains("injected endpoint panic"));
        assert_eq!(client_a.server_frame().row_text(0), "$");
        assert_eq!(client_b.server_frame().row_text(0), "$");
        assert_eq!(hub.now(healthy_a), 400);

        // Later pumps skip the quarantined shard and keep serving the
        // healthy one.
        let mut parties_a = vec![Party::new(C, &mut client_a), Party::new(S, &mut server_a)];
        let mut parties_doomed = vec![Party::new(C, &mut bomb)];
        let mut sessions = vec![
            HubSession::new(healthy_a, &mut parties_a, 800),
            HubSession::new(doomed, &mut parties_doomed, 800),
        ];
        hub.pump(&mut sessions);
        drop(sessions);
        assert_eq!(hub.now(healthy_a), 800);
        assert_eq!(hub.stats().shard_panics, 1, "no second panic: skipped");

        // Without checkpointing there is nothing to resurrect: recovery
        // reports no sessions rather than half-restoring anything, and
        // removing the doomed session must not dispatch into the
        // quarantined shard's suspect state.
        assert!(hub.resurrect_quarantined().is_empty());
        assert_eq!(hub.stats().sessions_resurrected, 0);
        hub.remove_session(doomed);
        hub.remove_session(doomed); // idempotent on a tombstone
        assert_eq!(hub.session_count(), 2, "healthy shard's sessions only");
    }

    #[test]
    fn inline_single_shard_pump_also_contains_the_panic() {
        let mut hub = ShardedHub::with_shards(1, SimPoller::new);
        let doomed = hub.add_session(sim_world(4));
        let mut bomb = PanicEndpoint;
        let mut parties = vec![Party::new(C, &mut bomb)];
        let mut sessions = vec![HubSession::new(doomed, &mut parties, 100)];
        let events = hub.pump(&mut sessions);
        drop(sessions);
        assert!(events.is_empty());
        assert_eq!(hub.stats().shard_panics, 1);
        assert!(hub.shard_error(0).is_some());
    }

    #[test]
    fn feed_shedding_and_hints_surface_in_hub_stats() {
        use mosh_net::channel::{addr_from_socket, socket_from_addr};
        use std::net::UdpSocket;
        use std::time::Instant;

        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let (mut hub, mut dist) = ShardedHub::over_distributor_with_capacity(socket, 1, 2).unwrap();
        let server_addr = dist.local_addr();
        let peer = UdpSocket::bind("127.0.0.1:0").unwrap();
        let peer_addr = addr_from_socket(peer.local_addr().unwrap());
        for _ in 0..4 {
            peer.send_to(b"flood", socket_from_addr(server_addr))
                .unwrap();
        }

        // Nobody pumps the lone shard, so its bounded queue (capacity 2)
        // sheds the rest — and the shedding must be visible through the
        // hub's stats, not just the distributor's.
        let start = Instant::now();
        while hub.stats().feed_overflow < 2 {
            assert!(
                start.elapsed().as_secs() < 10,
                "overflow never surfaced: {:?}",
                hub.stats()
            );
            dist.pump(5);
        }
        assert_eq!(hub.stats().feed_overflow, 2);
        assert_eq!(hub.stats().feed_hints, 0);

        // A shard reply teaches the distributor a source hint; the hub's
        // gauge tracks it.
        hub.shard_mut(0)
            .poller_mut()
            .send(Token(0), server_addr, peer_addr, b"reply".to_vec());
        assert_eq!(hub.stats().feed_hints, 1);
        assert_eq!(peer.recv_from(&mut [0u8; 64]).unwrap().0, 5);
    }

    #[test]
    fn sessions_sharing_a_world_are_co_located() {
        let mut hub = ShardedHub::with_shards(4, SimPoller::new);
        let first = hub.add_session(sim_world(7));
        let second = hub.add_session_sharing(first);
        let (shard_a, _) = hub.location(first);
        let (shard_b, _) = hub.location(second);
        assert_eq!(shard_a, shard_b, "one source, one owning thread");
        // And independent sessions still spread out.
        let third = hub.add_session(sim_world(8));
        assert_ne!(hub.location(third).0, shard_a);
    }

    /// One full conversation, with and without two mid-way migrations:
    /// the client's view and the server's entire explicit state (its
    /// snapshot bytes — keys, sequence numbers, shipped-state lists, RTT
    /// estimate, everything) must be byte-identical.
    #[test]
    fn live_migration_is_invisible_to_the_session() {
        let run = |migrate: bool| {
            let mut hub = ShardedHub::with_shards(2, SimPoller::new);
            let sid = hub.add_session(sim_world(42));
            let (mut client, mut server) = pair(9);
            for (target, key) in [(300u64, Some(b"h")), (600, Some(b"i")), (900, None)] {
                let mut parties = vec![Party::new(C, &mut client), Party::new(S, &mut server)];
                hub.pump(&mut [HubSession::new(sid, &mut parties, target)]);
                drop(parties);
                if let Some(k) = key {
                    client.keystroke(target, k);
                }
                if migrate {
                    let to = (hub.location(sid).0 + 1) % 2;
                    assert!(hub.migrate_session(sid, to), "migration refused");
                    assert_eq!(hub.location(sid).0, to);
                }
            }
            if migrate {
                assert_eq!(hub.stats().sessions_migrated, 3);
            }
            let row = client.server_frame().row_text(0);
            (row, super::super::snapshot::snapshot_server(&server))
        };
        let (row_moved, snap_moved) = run(true);
        let (row_still, snap_still) = run(false);
        assert_eq!(row_moved, "$ hi");
        assert_eq!(row_moved, row_still);
        assert_eq!(snap_moved, snap_still, "server state bit-for-bit equal");
    }

    #[test]
    fn rebalance_spreads_load_and_respects_colocation() {
        let mut hub = ShardedHub::with_shards(3, SimPoller::new);
        // Pile everything onto shard 0: three singles plus a co-located
        // pair sharing one world.
        let mut singles = Vec::new();
        for i in 0..3u64 {
            let tok = hub.shard_mut(0).poller_mut().add(sim_world(50 + i));
            singles.push(hub.add_session_on(0, tok));
        }
        let anchor_tok = hub.shard_mut(0).poller_mut().add(sim_world(60));
        let anchor = hub.add_session_on(0, anchor_tok);
        let tenant = hub.add_session_sharing(anchor);
        assert_eq!(hub.shard(0).session_count(), 5);

        let moved = hub.rebalance();
        let counts: Vec<usize> = (0..3).map(|i| hub.shard(i).session_count()).collect();
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(spread <= 1, "balanced: {counts:?}");
        assert_eq!(moved, 3, "the three singles moved");
        assert_eq!(hub.stats().sessions_migrated, moved as u64);
        // The pair shares one channel, so it moved together or not at all.
        assert_eq!(hub.location(anchor).0, hub.location(tenant).0);
        // And a direct migrate of either pair member is refused.
        assert!(!hub.migrate_session(anchor, 1));
    }

    /// The crash-recovery round trip (the tentpole's acceptance shape):
    /// a real session checkpoints on cadence, its shard is killed by a
    /// co-resident panicking endpoint, and resurrection brings it back
    /// on a healthy shard — same global id, client endpoint untouched,
    /// conversation continuing.
    #[test]
    fn quarantined_sessions_resurrect_from_checkpoints() {
        use super::super::snapshot;

        let mut hub = ShardedHub::with_shards(2, SimPoller::new);
        hub.enable_checkpointing(50);
        // Round-robin: bystander on shard 0, victim on shard 1.
        let bystander = hub.add_session(sim_world(11));
        let victim = hub.add_session(sim_world(12));
        let (mut client_b, mut server_b) = pair(3);
        let (mut client_v, mut server_v) = pair(4);

        // Reach the prompt, type, and let the cadence checkpoint the
        // typed-into state.
        {
            let mut pb = vec![Party::new(C, &mut client_b), Party::new(S, &mut server_b)];
            let mut pv = vec![Party::new(C, &mut client_v), Party::new(S, &mut server_v)];
            let mut sessions = vec![
                HubSession::new(bystander, &mut pb, 300),
                HubSession::new(victim, &mut pv, 300),
            ];
            hub.pump(&mut sessions);
        }
        client_v.keystroke(300, b"l");
        {
            let mut pb = vec![Party::new(C, &mut client_b), Party::new(S, &mut server_b)];
            let mut pv = vec![Party::new(C, &mut client_v), Party::new(S, &mut server_v)];
            let mut sessions = vec![
                HubSession::new(bystander, &mut pb, 600),
                HubSession::new(victim, &mut pv, 600),
            ];
            hub.pump(&mut sessions);
        }
        assert_eq!(client_v.server_frame().row_text(0), "$ l");
        assert!(hub.stats().checkpoint_bytes > 0, "cadence ran");
        let store = hub.checkpoint_store().expect("checkpointing on").clone();
        assert!(store.get(victim.0).is_some(), "victim has a checkpoint");

        // A bomb lands on the victim's shard and kills it mid-pump.
        let bomb_tok = hub.shard_mut(1).poller_mut().add(sim_world(13));
        let doomed = hub.add_session_on(1, bomb_tok);
        let mut bomb = PanicEndpoint;
        {
            let mut pv = vec![Party::new(C, &mut client_v), Party::new(S, &mut server_v)];
            let mut pd = vec![Party::new(C, &mut bomb)];
            let mut sessions = vec![
                HubSession::new(victim, &mut pv, 700),
                HubSession::new(doomed, &mut pd, 700),
            ];
            hub.pump(&mut sessions);
        }
        assert_eq!(hub.stats().shard_panics, 1);
        assert!(hub.shard_error(1).is_some());

        // Recovery: the victim resurrects from its checkpoint onto the
        // healthy shard; the bomb has no checkpoint and is lost.
        let seq_dead = server_v.next_seq();
        let recovered = hub.resurrect_quarantined();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, victim);
        assert_eq!(hub.location(victim).0, 0);
        assert_eq!(hub.stats().sessions_resurrected, 1);
        assert_eq!(hub.session_count(), 2, "bystander + resurrected victim");

        // The caller's half: rebuild the server endpoint from the
        // snapshot. The client endpoint never crashed and is kept as-is;
        // the resurrected server's nonces are strictly ahead of anything
        // the dead incarnation could have sent.
        let mut server_v2 = snapshot::resurrect_server(&recovered[0].1, Box::new(LineShell::new()))
            .expect("checkpoint decodes");
        assert!(server_v2.next_seq() > seq_dead, "nonce margin burned");
        drop(server_v);

        // The conversation continues: un-checkpointed tail retransmits,
        // new input round-trips through the resurrected endpoint.
        client_v.keystroke(700, b"s");
        {
            let mut pb = vec![Party::new(C, &mut client_b), Party::new(S, &mut server_b)];
            let mut pv = vec![Party::new(C, &mut client_v), Party::new(S, &mut server_v2)];
            let mut sessions = vec![
                HubSession::new(bystander, &mut pb, 2000),
                HubSession::new(victim, &mut pv, 2000),
            ];
            hub.pump(&mut sessions);
        }
        assert_eq!(client_v.server_frame().row_text(0), "$ ls");
        assert_eq!(
            client_b.server_frame().row_text(0),
            "$",
            "bystander untouched"
        );
    }
}
