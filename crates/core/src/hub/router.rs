//! The sharded multi-threaded hub runtime.
//!
//! [`ShardedHub`] scales the single-threaded [`ServerHub`] across cores:
//! N worker threads, each owning a **private** shard (poller + timer
//! wheel + sessions), fed by a sharding front end that assigns sessions
//! to shards at accept time. Nothing is locked on the datagram path —
//! sessions are independent worlds behind tokens, endpoints are `Send`,
//! and a shard's poller sources are touched by exactly one thread at a
//! time — so per-session behavior is **byte-identical to the
//! single-threaded hub for every shard count** (pinned by
//! `tests/sharded_hub.rs` and the sharded decrypt-once suite).
//!
//! Datagram routing is layered exactly as in one hub:
//!
//! * **Private sources** (a simulated world per session, or a socket per
//!   shard): the owning shard routes by receive address, source hint,
//!   and cryptographic authentication — the [`ServerHub`] demux,
//!   unchanged. Sessions sharing one source (many users behind one
//!   socket or one emulated NAT world) are co-located on that source's
//!   shard at accept time, so their ambiguous-address datagrams are
//!   still OCB-opened exactly once by the winning session's probe.
//! * **A source shared by all shards** (one UDP port for the whole
//!   server): a `mosh_net::UdpDistributor` owns the socket and feeds
//!   per-shard SPSC queues, routing by authenticated source hints; a
//!   datagram its first shard cannot authenticate is *bounced* back
//!   (via the shard's unclaimed-datagram hook, never counted dropped)
//!   and fanned out to the next shard. The winning shard's `try_open`
//!   probe keeps the verified plaintext — the `Opened` token is `Send`
//!   and crosses the shard boundary as the delivery itself, so the
//!   fan-out never decrypts a datagram twice.
//!
//! Worker threads are scoped per pump: the caller keeps ownership of
//! every endpoint and injects keystrokes between pumps, exactly as with
//! one hub. One shard runs inline (a `ShardedHub` of 1 *is* a
//! `ServerHub`, thread overhead included).

use super::shard::ServerHub;
use super::{HubSession, HubStats, SessionId};
use crate::session::SessionEvent;
use crate::Millis;
use mosh_net::{Channel, ChannelPoller, FeedChannel, Poller, Token, UdpDistributor};
use std::collections::HashMap;
use std::io;
use std::net::UdpSocket;

/// The sharding front end: N worker threads, each a private [`ServerHub`].
pub struct ShardedHub<P: Poller> {
    shards: Vec<ServerHub<P>>,
    /// Global session id → (owning shard, its local id there).
    sessions: Vec<(usize, SessionId)>,
    /// Accept-time assignment cursor (round-robin).
    next_shard: usize,
    /// Per-shard token of the distributor-shared source, when one exists.
    shared: Vec<Token>,
}

impl<P: Poller> ShardedHub<P> {
    /// A sharded hub over one poller per worker thread.
    pub fn new(pollers: Vec<P>) -> Self {
        assert!(!pollers.is_empty(), "a hub needs at least one shard");
        ShardedHub {
            shards: pollers.into_iter().map(ServerHub::new).collect(),
            sessions: Vec::new(),
            next_shard: 0,
            shared: Vec::new(),
        }
    }

    /// A sharded hub of `n` shards built by `make` (e.g.
    /// `ShardedHub::with_shards(4, SimPoller::new)`).
    pub fn with_shards(n: usize, mut make: impl FnMut() -> P) -> Self {
        Self::new((0..n).map(|_| make()).collect())
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard (its poller carries network stats, socket addresses, …).
    pub fn shard(&self, i: usize) -> &ServerHub<P> {
        &self.shards[i]
    }

    /// Mutable shard access (register sources, rebind sockets, inject
    /// emulator traffic in tests, …).
    pub fn shard_mut(&mut self, i: usize) -> &mut ServerHub<P> {
        &mut self.shards[i]
    }

    /// Accepts a session living on its own private source: the session
    /// is assigned to a shard **at accept time** (round-robin) and the
    /// source is registered on that shard's poller. Returns the global
    /// session id.
    pub fn add_session(&mut self, channel: P::Chan) -> SessionId {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        let tok = self.shards[shard].poller_mut().add(channel);
        self.add_session_on(shard, tok)
    }

    /// Accepts a session sharing the source (and therefore the shard) of
    /// an existing session — many sessions behind one socket or one
    /// emulated world. Co-location is what keeps a shared source owned
    /// by exactly one thread; the shard's demux handles the ambiguity
    /// exactly as a single-threaded hub would.
    pub fn add_session_sharing(&mut self, with: SessionId) -> SessionId {
        let (shard, local) = self.sessions[with.0];
        let tok = self.shards[shard].token_of(local);
        self.add_session_on(shard, tok)
    }

    /// Accepts a session on an explicit shard and source token (the
    /// low-level accept path the other accessors build on).
    pub fn add_session_on(&mut self, shard: usize, tok: Token) -> SessionId {
        let local = self.shards[shard].add_session(tok);
        let sid = SessionId(self.sessions.len());
        self.sessions.push((shard, local));
        sid
    }

    /// The shard a session lives on and its local id there.
    pub fn location(&self, sid: SessionId) -> (usize, SessionId) {
        self.sessions[sid.0]
    }

    /// Retires a session (see [`ServerHub::remove_session`]), and evicts
    /// any substrate routing state learned for it — for a session behind
    /// the shared socket, the distributor's source hints
    /// ([`mosh_net::Channel::evict_hint`]), which would otherwise grow
    /// with every client address ever served and cost later traffic from
    /// a reused address an extra bounce hop.
    pub fn remove_session(&mut self, sid: SessionId) {
        let (shard, local) = self.sessions[sid.0];
        let evicted = self.shards[shard].remove_session(local);
        for (tok, addr) in evicted {
            self.shards[shard]
                .poller_mut()
                .channel_mut(tok)
                .evict_hint(addr);
        }
    }

    /// Configures a session's peer-silence timeout.
    pub fn set_peer_timeout(&mut self, sid: SessionId, timeout: Option<Millis>) {
        let (shard, local) = self.sessions[sid.0];
        self.shards[shard].set_peer_timeout(local, timeout);
    }

    /// Number of sessions registered and not yet removed, over all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.session_count()).sum()
    }

    /// Current time on a session's source clock.
    pub fn now(&self, sid: SessionId) -> Millis {
        let (shard, local) = self.sessions[sid.0];
        self.shards[shard].now(local)
    }

    /// Aggregated counters over all shards.
    pub fn stats(&self) -> HubStats {
        let mut total = HubStats::default();
        for s in &self.shards {
            total.add(s.stats());
        }
        total
    }
}

impl<P: Poller + Send> ShardedHub<P> {
    /// Drives every leased session until its own target — each shard's
    /// sessions on that shard's worker thread — returning all events
    /// tagged by **global** session id, grouped by shard in shard order
    /// (cross-shard ordering carries no meaning: shards are independent
    /// worlds, exactly as a poller's sources already are).
    ///
    /// Per-session semantics are exactly [`ServerHub::pump`]'s; a hub of
    /// one shard pumps inline with no thread at all.
    pub fn pump(&mut self, sessions: &mut [HubSession<'_, '_>]) -> Vec<(SessionId, SessionEvent)> {
        self.pump_inner(sessions, None::<fn()>)
    }

    /// Like [`ShardedHub::pump`], running `side` on the calling thread
    /// *while* the shards pump — the seat of a `UdpDistributor` draining
    /// a shared socket for the duration of the pump. Because `side` must
    /// genuinely run concurrently (a blocked shard may be waiting on a
    /// datagram only `side` can feed it), every shard gets a worker
    /// thread here, even a lone one — the inline fast path belongs to
    /// [`ShardedHub::pump`] alone.
    pub fn pump_with(
        &mut self,
        sessions: &mut [HubSession<'_, '_>],
        side: impl FnOnce(),
    ) -> Vec<(SessionId, SessionEvent)> {
        self.pump_inner(sessions, Some(side))
    }

    fn pump_inner(
        &mut self,
        sessions: &mut [HubSession<'_, '_>],
        side: Option<impl FnOnce()>,
    ) -> Vec<(SessionId, SessionEvent)> {
        // Partition leases by owning shard, remembering each lease's
        // local id and the local→global mapping for the event tags.
        let n = self.shards.len();
        let mut buckets: Vec<Vec<(SessionId, &mut HubSession<'_, '_>)>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut to_global: Vec<HashMap<SessionId, SessionId>> =
            (0..n).map(|_| HashMap::new()).collect();
        for s in sessions.iter_mut() {
            let (shard, local) = self.sessions[s.id.0];
            to_global[shard].insert(local, s.id);
            buckets[shard].push((local, s));
        }

        let pump_shard = |shard: &mut ServerHub<P>,
                          bucket: Vec<(SessionId, &mut HubSession<'_, '_>)>|
         -> Vec<(SessionId, SessionEvent)> {
            let mut leases: Vec<HubSession<'_, '_>> = bucket
                .into_iter()
                .map(|(local, s)| HubSession::new(local, &mut *s.parties, s.target))
                .collect();
            shard.pump(&mut leases)
        };

        if n == 1 && side.is_none() {
            let events = pump_shard(&mut self.shards[0], buckets.pop().expect("one bucket"));
            return events
                .into_iter()
                .map(|(local, ev)| (to_global[0][&local], ev))
                .collect();
        }

        // Worker threads are scoped per pump: endpoints stay owned by
        // the caller, borrowed for exactly this pump. Shards with no
        // leases this pump are parked, like unleased sessions.
        let mut per_shard: Vec<Vec<(SessionId, SessionEvent)>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(buckets)
                .map(|(shard, bucket)| {
                    if bucket.is_empty() {
                        None
                    } else {
                        Some(scope.spawn(move || pump_shard(shard, bucket)))
                    }
                })
                .collect();
            if let Some(side) = side {
                side();
            }
            for h in handles {
                per_shard.push(match h {
                    Some(h) => h.join().expect("shard worker panicked"),
                    None => Vec::new(),
                });
            }
        });
        per_shard
            .into_iter()
            .enumerate()
            .flat_map(|(i, events)| {
                let map = &to_global[i];
                events.into_iter().map(move |(local, ev)| (map[&local], ev))
            })
            .collect()
    }
}

impl ShardedHub<ChannelPoller<FeedChannel>> {
    /// A sharded hub whose shards all answer on **one** UDP socket: the
    /// socket is split into a [`UdpDistributor`] (drain it with
    /// [`UdpDistributor::pump`], typically inside
    /// [`ShardedHub::pump_with`]'s `side`) plus one queue-fed source per
    /// shard. Each shard's unclaimed-datagram hook is wired to bounce
    /// foreign wires back to the distributor, completing the cross-shard
    /// authentication fan-out.
    pub fn over_distributor(
        socket: UdpSocket,
        shards: usize,
    ) -> io::Result<(Self, UdpDistributor)> {
        let (dist, feeds) = UdpDistributor::new(socket, shards)?;
        let mut hub = ShardedHub {
            shards: Vec::with_capacity(feeds.len()),
            sessions: Vec::new(),
            next_shard: 0,
            shared: Vec::with_capacity(feeds.len()),
        };
        for feed in feeds {
            let bouncer = feed.bouncer();
            let mut poller = ChannelPoller::new();
            let tok = poller.add(feed);
            let mut shard = ServerHub::new(poller);
            // Only the shared source bounces; a private source's
            // unclaimed traffic is line noise, dropped as always. The
            // hook also marks the source shared, so the shard always
            // routes it by authentication — even with a single local
            // session, a foreign client's datagram must bounce onward
            // rather than be swallowed by the wrong endpoint.
            shard.set_unclaimed(tok, Box::new(move |dg| bouncer.bounce(dg)));
            hub.shards.push(shard);
            hub.shared.push(tok);
        }
        Ok((hub, dist))
    }

    /// Accepts a session behind the shared socket, assigned to a shard
    /// round-robin at accept time.
    pub fn add_distributed_session(&mut self) -> SessionId {
        assert!(
            !self.shared.is_empty(),
            "no distributor: build with over_distributor"
        );
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        self.add_session_on(shard, self.shared[shard])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;
    use crate::client::MoshClient;
    use crate::server::MoshServer;
    use crate::session::Party;
    use mosh_crypto::Base64Key;
    use mosh_net::{LinkConfig, Network, Side, SimChannel, SimPoller};
    use mosh_prediction::DisplayPreference;

    const C: Addr = Addr::new(1, 1000);
    const S: Addr = Addr::new(2, 60001);
    use mosh_net::Addr;

    fn sim_world(seed: u64) -> SimChannel {
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        net.register(C, Side::Client);
        net.register(S, Side::Server);
        SimChannel::new(net)
    }

    fn pair(key_byte: u8) -> (MoshClient, MoshServer) {
        let key = Base64Key::from_bytes([key_byte; 16]);
        (
            MoshClient::new(key.clone(), S, 80, 24, DisplayPreference::Never),
            MoshServer::new(key, Box::new(LineShell::new())),
        )
    }

    /// The whole sharded runtime is Send: shards (with their pollers,
    /// drivers, and boxed hooks) can move to worker threads.
    #[test]
    fn sharded_runtime_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ServerHub<SimPoller>>();
        assert_send::<ShardedHub<SimPoller>>();
        assert_send::<MoshClient>();
        assert_send::<MoshServer>();
        assert_send::<mosh_ssp::datagram::Opened>();
    }

    #[test]
    fn shards_drive_sessions_to_their_prompts_in_parallel() {
        for shards in [1usize, 2, 3] {
            let mut hub = ShardedHub::with_shards(shards, SimPoller::new);
            let mut users = Vec::new();
            let mut sids = Vec::new();
            for u in 0..5u8 {
                sids.push(hub.add_session(sim_world(u as u64)));
                users.push(pair(u + 1));
            }
            // Round-robin accept spreads sessions over every shard.
            assert_eq!(hub.session_count(), 5);
            assert!((0..5).all(|i| hub.location(sids[i]).0 == (i % shards)));

            let mut leases: Vec<Vec<Party<'_>>> = Vec::new();
            for (client, server) in users.iter_mut() {
                leases.push(vec![Party::new(C, client), Party::new(S, server)]);
            }
            let mut sessions: Vec<HubSession<'_, '_>> = leases
                .iter_mut()
                .zip(sids.iter())
                .map(|(parties, sid)| HubSession::new(*sid, parties, 400))
                .collect();
            let events = hub.pump(&mut sessions);
            drop(sessions);
            drop(leases);

            for (sid, (client, _)) in sids.iter().zip(users.iter()) {
                assert_eq!(client.server_frame().row_text(0), "$");
                assert_eq!(hub.now(*sid), 400);
            }
            assert!(events
                .iter()
                .any(|(_, e)| matches!(e, SessionEvent::FrameAdvanced { .. })));
            assert!(hub.stats().delivered > 0);
            assert_eq!(hub.stats().dropped, 0);
        }
    }

    #[test]
    fn sessions_sharing_a_world_are_co_located() {
        let mut hub = ShardedHub::with_shards(4, SimPoller::new);
        let first = hub.add_session(sim_world(7));
        let second = hub.add_session_sharing(first);
        let (shard_a, _) = hub.location(first);
        let (shard_b, _) = hub.location(second);
        assert_eq!(shard_a, shard_b, "one source, one owning thread");
        // And independent sessions still spread out.
        let third = hub.add_session(sim_world(8));
        assert_ne!(hub.location(third).0, shard_a);
    }
}
