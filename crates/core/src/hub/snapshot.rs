//! Versioned, checksummed snapshot framing for hub sessions, plus the
//! shared [`CheckpointStore`] that crash recovery reads from and the
//! handoff container that rolling restarts ship between processes.
//!
//! A [`crate::server::MoshServer`] already knows how to encode and
//! decode its own body ([`crate::server::MoshServer::encode_snapshot_body`]);
//! this module wraps that body in a self-describing frame so a snapshot
//! written by one process can be rejected — not half-applied — by
//! another when it is truncated, bit-flipped, or from an incompatible
//! build:
//!
//! ```text
//! "MSHS" | version: u16 BE | crc32(body): u32 BE | body
//! ```
//!
//! Three consumers, three entry points:
//!
//! * **Migration** within one process moves the live endpoint value —
//!   no snapshot involved. (See `ShardedHub::migrate_session`.)
//! * **Handoff** across processes uses [`snapshot_server`] /
//!   [`restore_server`]: the old process was shut down cleanly, so the
//!   restored session resumes byte-identical — same sequence numbers,
//!   same chaff, same wire.
//! * **Crash recovery** uses [`resurrect_server`]: the snapshot is
//!   *stale* (the crashed shard may have sent datagrams after the last
//!   checkpoint), so the restored session burns a generous nonce gap
//!   ([`SEQ_SKIP_MARGIN`]) to stay strictly ahead of anything the dead
//!   incarnation could have emitted. Un-checkpointed client input is
//!   recovered by SSP's own retransmit: a checkpoint caps the session's
//!   outgoing acks at what it contains, so the client never stops
//!   resending the tail.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use mosh_ssp::wire::{put_bytes, put_varint, Reader};

use crate::server::MoshServer;
use crate::Application;

/// Frame magic: identifies a mosh hub session snapshot.
pub const MAGIC: [u8; 4] = *b"MSHS";

/// Current snapshot format version. Bump on any change to the body
/// layout; old readers reject newer frames whole.
///
/// History: v1 — initial container; v2 — [`mosh_terminal::Framebuffer`]
/// encoding grew bounded scrollback and a `display_offset` (scrollback
/// now survives migration, checkpoint/resurrect, and roaming).
pub const VERSION: u16 = 2;

/// Nonce gap burned when resurrecting from a possibly-stale checkpoint:
/// the dead shard cannot have encrypted this many datagrams between the
/// checkpoint and its crash, so the resurrected session never reuses a
/// nonce the client may already have seen.
pub const SEQ_SKIP_MARGIN: u64 = 1 << 20;

/// Why a snapshot was rejected. Every failure rejects the frame whole —
/// a bad snapshot is never partially applied to a live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than the fixed frame header.
    TooShort,
    /// The leading bytes are not [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// A snapshot from a newer (or unknown) format revision.
    UnsupportedVersion(u16),
    /// The body does not match its recorded CRC: truncated in storage
    /// or corrupted in flight.
    ChecksumMismatch,
    /// The frame is intact but the body fails structural validation
    /// (internal inconsistency, trailing garbage, or an application
    /// state that does not match the restoring app's kind).
    Malformed,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than frame header"),
            SnapshotError::BadMagic => write!(f, "missing MSHS snapshot magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed => write!(f, "snapshot body malformed"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const HEADER_LEN: usize = 4 + 2 + 4;

/// Wraps an encoded body in the versioned, checksummed frame.
pub fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates a frame and returns the body it carries.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::TooShort);
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_be_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let want = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    let body = &bytes[HEADER_LEN..];
    if crc32(body) != want {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(body)
}

/// Snapshots a server verbatim — the clean-handoff entry point. Does
/// **not** touch the ack ceiling, so a snapshot-and-restore round trip
/// leaves the session byte-identical going forward. For crash-recovery
/// checkpoints use [`crate::server::MoshServer::checkpoint_body`]
/// (which caps acks first) and frame the result with [`frame`].
pub fn snapshot_server(server: &MoshServer) -> Vec<u8> {
    let mut body = Vec::new();
    server.encode_snapshot_body(&mut body);
    frame(&body)
}

/// Restores a server from a framed snapshot, verbatim. Used for clean
/// handoff, where the previous incarnation is known to have stopped:
/// sequence numbers continue exactly where the snapshot left them.
pub fn restore_server(
    bytes: &[u8],
    app: Box<dyn Application>,
) -> Result<MoshServer, SnapshotError> {
    let body = unframe(bytes)?;
    MoshServer::decode_snapshot_body(body, app).ok_or(SnapshotError::Malformed)
}

/// Restores a server from a possibly-stale checkpoint — the crash
/// recovery entry point. Identical to [`restore_server`] plus a
/// [`SEQ_SKIP_MARGIN`] nonce skip, because the dead incarnation may
/// have encrypted datagrams after this checkpoint was taken.
pub fn resurrect_server(
    bytes: &[u8],
    app: Box<dyn Application>,
) -> Result<MoshServer, SnapshotError> {
    let mut server = restore_server(bytes, app)?;
    server.skip_seq_ahead(SEQ_SKIP_MARGIN);
    Ok(server)
}

/// One stored checkpoint: the framed snapshot plus the activity marker
/// it was taken at (used to skip re-checkpointing idle sessions).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Framed snapshot bytes ([`frame`] output).
    pub framed: Vec<u8>,
    /// `(latest_sent_num, remote_state_num)` at checkpoint time.
    pub marker: (u64, u64),
}

/// Shared checkpoint storage, keyed by a hub's global session id.
///
/// Shards write into it on their checkpoint cadence; the router reads
/// from it when a quarantined shard's sessions need resurrecting. The
/// store is deliberately dumb — a mutexed map — because checkpointing
/// is rate-limited by cadence, not by contention.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<HashMap<usize, Checkpoint>>>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or replaces) the checkpoint for session `key`.
    pub fn put(&self, key: usize, framed: Vec<u8>, marker: (u64, u64)) {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(key, Checkpoint { framed, marker });
    }

    /// The latest framed snapshot for `key`, if one was ever taken.
    pub fn get(&self, key: usize) -> Option<Vec<u8>> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key).map(|c| c.framed.clone())
    }

    /// The activity marker recorded with `key`'s latest checkpoint.
    pub fn marker(&self, key: usize) -> Option<(u64, u64)> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key).map(|c| c.marker)
    }

    /// Drops the checkpoint for `key` (session removed from the hub).
    pub fn remove(&self, key: usize) {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(&key);
    }

    /// Number of sessions with a stored checkpoint.
    pub fn len(&self) -> usize {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.len()
    }

    /// True when no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of framed snapshots currently stored.
    pub fn total_bytes(&self) -> u64 {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.values().map(|c| c.framed.len() as u64).sum()
    }
}

/// Handoff container entries: `(global session id, framed snapshot)`
/// per session, in hub order.
pub type HandoffEntries = Vec<(usize, Vec<u8>)>;

/// Encodes a whole hub's sessions as one framed handoff container:
/// `count | (global-session-id, framed-snapshot)...`. The entries are
/// each already framed, so a reader can reject one corrupt session
/// without trusting the rest — and the container has its own frame on
/// top, so storage truncation is caught before any entry is parsed.
pub fn encode_handoff(entries: &[(usize, Vec<u8>)]) -> Vec<u8> {
    let mut body = Vec::new();
    put_varint(&mut body, entries.len() as u64);
    for (sid, framed) in entries {
        put_varint(&mut body, *sid as u64);
        put_bytes(&mut body, framed);
    }
    frame(&body)
}

/// Decodes a handoff container back into `(global-session-id, framed
/// snapshot)` entries. The entries' own frames are *not* validated here
/// — each is checked by [`restore_server`] when the session is rebuilt,
/// so one corrupt entry fails individually rather than sinking the
/// whole handoff at parse time.
pub fn decode_handoff(bytes: &[u8]) -> Result<HandoffEntries, SnapshotError> {
    let body = unframe(bytes)?;
    let mut r = Reader::new(body);
    let count = r.varint().map_err(|_| SnapshotError::Malformed)? as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let sid = r.varint().map_err(|_| SnapshotError::Malformed)? as usize;
        let framed = r.bytes().map_err(|_| SnapshotError::Malformed)?;
        entries.push((sid, framed.to_vec()));
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed);
    }
    Ok(entries)
}

/// Writes a handoff container to `path` (rolling-restart producer).
pub fn write_handoff(path: &std::path::Path, entries: &[(usize, Vec<u8>)]) -> std::io::Result<()> {
    std::fs::write(path, encode_handoff(entries))
}

/// Reads a handoff container from `path` (rolling-restart consumer).
pub fn read_handoff(
    path: &std::path::Path,
) -> std::io::Result<Result<HandoffEntries, SnapshotError>> {
    Ok(decode_handoff(&std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;
    use crate::Millis;
    use mosh_crypto::session::Direction;
    use mosh_crypto::Base64Key;
    use mosh_net::Addr;
    use mosh_ssp::transport::Transport;
    use mosh_states::{CompleteTerminal, UserStream};

    fn key() -> Base64Key {
        Base64Key::from_bytes([8u8; 16])
    }

    fn client_addr() -> Addr {
        Addr::new(1, 999)
    }

    /// A server that has seen real traffic, so its snapshot exercises
    /// every section of the body.
    fn busy_server() -> (MoshServer, Transport<UserStream, CompleteTerminal>) {
        let mut server = MoshServer::new(key(), Box::new(LineShell::new()));
        let mut client = Transport::new(
            key(),
            Direction::ToServer,
            UserStream::new(),
            CompleteTerminal::initial(),
        );
        let mut input = UserStream::new();
        input.push_keystroke(b"l");
        client.set_current_state(input, 5);
        for now in 0..200 {
            for w in client.tick(now as Millis) {
                server.receive(now as Millis, client_addr(), &w);
            }
            for (_, w) in server.tick(now as Millis) {
                let _ = client.receive(now as Millis, &w);
            }
        }
        (server, client)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn frame_round_trips() {
        let body = b"hello snapshot".to_vec();
        let framed = frame(&body);
        assert_eq!(unframe(&framed).unwrap(), &body[..]);
    }

    #[test]
    fn unframe_rejects_every_corruption_mode() {
        let framed = frame(b"payload");
        // Truncation at every prefix of the header.
        for cut in 0..HEADER_LEN {
            assert_eq!(unframe(&framed[..cut]), Err(SnapshotError::TooShort));
        }
        // Wrong magic.
        let mut bad = framed.clone();
        bad[0] = b'X';
        assert_eq!(unframe(&bad), Err(SnapshotError::BadMagic));
        // Future version.
        let mut bad = framed.clone();
        bad[5] = VERSION as u8 + 1;
        assert!(matches!(
            unframe(&bad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        // A bit flip anywhere in the body trips the checksum.
        for i in HEADER_LEN..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x10;
            assert_eq!(unframe(&bad), Err(SnapshotError::ChecksumMismatch));
        }
        // Truncating the body also trips the checksum.
        assert_eq!(
            unframe(&framed[..framed.len() - 1]),
            Err(SnapshotError::ChecksumMismatch)
        );
    }

    #[test]
    fn snapshot_restore_round_trips_a_busy_server() {
        let (server, _client) = busy_server();
        let framed = snapshot_server(&server);
        let restored = restore_server(&framed, Box::new(LineShell::new())).unwrap();
        // The restored twin re-encodes to the same body.
        assert_eq!(snapshot_server(&restored), framed);
    }

    #[test]
    fn restore_rejects_corrupt_snapshots_whole() {
        let (server, _client) = busy_server();
        let framed = snapshot_server(&server);
        // Bit flips anywhere in the body are caught by the CRC, long
        // before the body decoder could half-apply anything.
        for i in (HEADER_LEN..framed.len()).step_by(13) {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                restore_server(&bad, Box::new(LineShell::new())).err(),
                Some(SnapshotError::ChecksumMismatch)
            );
        }
        // A structurally valid frame around a truncated body decodes
        // to Malformed — still rejected whole.
        let body = unframe(&framed).unwrap();
        let reframed = frame(&body[..body.len() - 3]);
        assert_eq!(
            restore_server(&reframed, Box::new(LineShell::new())).err(),
            Some(SnapshotError::Malformed)
        );
    }

    #[test]
    fn resurrect_skips_the_nonce_margin() {
        let (mut server, _client) = busy_server();
        let framed = frame(&server.checkpoint_body());
        let seq_before = server.next_seq();
        let resurrected = resurrect_server(&framed, Box::new(LineShell::new())).unwrap();
        let seq_after = resurrected.next_seq();
        assert!(seq_after >= seq_before + SEQ_SKIP_MARGIN);
    }

    #[test]
    fn checkpoint_store_tracks_len_and_bytes() {
        let store = CheckpointStore::new();
        assert!(store.is_empty());
        store.put(3, vec![1, 2, 3], (10, 20));
        store.put(7, vec![4, 5], (1, 2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 5);
        assert_eq!(store.get(3), Some(vec![1, 2, 3]));
        assert_eq!(store.marker(3), Some((10, 20)));
        // Replacement, not accumulation.
        store.put(3, vec![9; 10], (11, 21));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 12);
        store.remove(3);
        assert_eq!(store.get(3), None);
        assert_eq!(store.len(), 1);
        // Clones share the same map.
        let twin = store.clone();
        twin.put(8, vec![0], (0, 0));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn handoff_container_round_trips_and_rejects_corruption() {
        let entries = vec![(0usize, vec![1, 2, 3]), (5, vec![]), (2, vec![9; 40])];
        let container = encode_handoff(&entries);
        assert_eq!(decode_handoff(&container).unwrap(), entries);
        // Bit flip in the container body.
        let mut bad = container.clone();
        bad[HEADER_LEN + 2] ^= 1;
        assert_eq!(decode_handoff(&bad), Err(SnapshotError::ChecksumMismatch));
        // Reframed-but-truncated body is structurally rejected.
        let body = unframe(&container).unwrap();
        let reframed = frame(&body[..body.len() - 1]);
        assert_eq!(decode_handoff(&reframed), Err(SnapshotError::Malformed));
        // Trailing garbage behind the last entry is rejected too.
        let mut long = body.to_vec();
        long.push(0);
        assert_eq!(decode_handoff(&frame(&long)), Err(SnapshotError::Malformed));
    }

    #[test]
    fn handoff_file_round_trips() {
        let entries = vec![(1usize, snapshot_server(&busy_server().0))];
        let path = std::env::temp_dir().join("mosh-handoff-test.bin");
        write_handoff(&path, &entries).unwrap();
        let back = read_handoff(&path).unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, entries);
    }
}
