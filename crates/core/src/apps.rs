//! Host applications the Mosh server runs.
//!
//! The paper's traces cover "the bash and zsh shells, the alpine and mutt
//! e-mail clients, the emacs and vim text editors, … chat clients, [and] the
//! links text-mode Web browser" (§4). This module provides faithful models
//! of those application *classes*, distinguished by their echo behaviour —
//! which is all the prediction engine can observe (§3.2):
//!
//! * [`LineShell`] — canonical-mode echo with line editing, command output
//!   bursts, `passwd`-style echo suppression, and a runaway `yes` flood for
//!   the Control-C experiment.
//! * [`Editor`] — a raw-mode full-screen editor that does its own echoing
//!   (the emacs/vim class, including the multi-mode behaviour of vi).
//! * [`Pager`] — full-screen page-at-a-time navigation (`less`/`more`).
//! * [`MailReader`] — navigation-heavy list browsing (alpine/mutt): the
//!   keystrokes Mosh fundamentally cannot predict.
//!
//! Applications are deterministic and time-explicit: input produces writes
//! scheduled at absolute times, so the same session replays identically.

use crate::Millis;
use mosh_ssp::wire::{put_bytes, put_varint, Reader};

/// Application-kind tags leading every [`Application::save_state`] body,
/// so restoring onto the wrong kind of app is caught instead of silently
/// mixing states.
mod kind_tag {
    pub const LINE_SHELL: u64 = 1;
    pub const EDITOR: u64 = 2;
    pub const PAGER: u64 = 3;
    pub const MAIL_READER: u64 = 4;
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_varint(out, u64::from(v));
}

fn get_bool(r: &mut Reader<'_>) -> Option<bool> {
    match r.varint().ok()? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Option<String> {
    String::from_utf8(r.bytes().ok()?.to_vec()).ok()
}

/// One chunk of application output, due at an absolute time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedWrite {
    /// Virtual time at which the host writes these bytes to the terminal.
    pub at: Millis,
    /// The bytes written.
    pub bytes: Vec<u8>,
}

/// A program running under the Mosh server's terminal.
pub trait Application: Send {
    /// Output produced when the session starts (screen setup).
    fn start(&mut self, _now: Millis) -> Vec<TimedWrite> {
        Vec::new()
    }

    /// Handles user input (or a terminal reply), emitting scheduled writes.
    fn on_input(&mut self, now: Millis, bytes: &[u8]) -> Vec<TimedWrite>;

    /// Spontaneous output (flood/background apps); called regularly.
    fn poll(&mut self, _now: Millis) -> Vec<TimedWrite> {
        Vec::new()
    }

    /// The earliest time [`Application::poll`] could produce output.
    /// Event-driven drivers step straight to this time instead of polling
    /// on a coarse floor, so this is a *liveness contract*: `Some(t)`
    /// promises no output becomes due before `t`, and `None` (the
    /// default) promises [`Application::poll`] produces **nothing** until
    /// an [`Application::on_input`] / [`Application::on_resize`] /
    /// [`Application::start`] call re-arms the schedule. An application
    /// with genuinely unpredictable spontaneous output must return a
    /// concrete polling time, not `None`.
    fn next_wakeup(&self, _now: Millis) -> Option<Millis> {
        None
    }

    /// The window changed size.
    fn on_resize(&mut self, _now: Millis, _width: usize, _height: usize) -> Vec<TimedWrite> {
        Vec::new()
    }

    /// Serializes the application's *dynamic* state for session
    /// snapshots. Construction-time configuration (content size, echo
    /// delay overrides) is the caller's to rebuild when resurrecting a
    /// session; this covers only what user input has changed since. The
    /// default empty body pairs with the default [`Application::restore_state`]
    /// for stateless applications.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Applies state produced by [`Application::save_state`] onto a
    /// freshly constructed twin. Returns `false` when the bytes are not
    /// recognized (corrupt snapshot or mismatched application kind); the
    /// application is left unchanged in that case — never half-applied.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

// ---------------------------------------------------------------------
// LineShell
// ---------------------------------------------------------------------

/// A canonical-mode shell: echoes keystrokes, edits a line, runs commands.
///
/// Built-in commands: `echo <text>`, `ls`, `cat <n>` (n lines of output),
/// `seq <n>`, `clear`, `passwd` (suppresses echo until ENTER, the paper's
/// §3.2 example), `yes` (floods output until Control-C), and anything else
/// prints `command not found`.
#[derive(Debug)]
pub struct LineShell {
    line: String,
    echo_on: bool,
    prompt: &'static str,
    /// Milliseconds between input arrival and its echo (application think
    /// time; the paper's servers took "tens of milliseconds" when loaded).
    echo_delay: Millis,
    /// An active `yes` flood: output until interrupted.
    flooding: bool,
    next_flood_at: Millis,
    flood_line: u64,
    /// `passwd` captured input awaiting ENTER.
    passwd_pending: bool,
}

impl Default for LineShell {
    fn default() -> Self {
        Self::new()
    }
}

impl LineShell {
    /// A shell with a 2 ms echo delay.
    pub fn new() -> Self {
        LineShell {
            line: String::new(),
            echo_on: true,
            prompt: "$ ",
            echo_delay: 2,
            flooding: false,
            next_flood_at: 0,
            flood_line: 0,
            passwd_pending: false,
        }
    }

    /// Overrides the echo delay (models loaded servers).
    pub fn with_echo_delay(mut self, delay: Millis) -> Self {
        self.echo_delay = delay;
        self
    }

    fn run_command(&mut self, now: Millis, out: &mut Vec<TimedWrite>) {
        let cmd = std::mem::take(&mut self.line);
        let mut emit = |at: Millis, s: String| {
            out.push(TimedWrite {
                at,
                bytes: s.into_bytes(),
            })
        };
        let t = now + self.echo_delay;
        if self.passwd_pending {
            self.passwd_pending = false;
            self.echo_on = true;
            emit(
                t + 30,
                "\r\npasswd: password updated successfully\r\n".into(),
            );
            emit(t + 31, self.prompt.into());
            return;
        }
        let mut parts = cmd.split_whitespace();
        match parts.next() {
            None => emit(t, format!("\r\n{}", self.prompt)),
            Some("echo") => {
                let rest: Vec<&str> = parts.collect();
                emit(t, format!("\r\n{}\r\n{}", rest.join(" "), self.prompt));
            }
            Some("ls") => {
                emit(
                    t + 4,
                    format!(
                        "\r\nMakefile   README.md  docs/      src/\r\nbuild.rs   config.),  target/    tests/\r\n{}",
                        self.prompt
                    ),
                );
            }
            Some("cat") => {
                let n: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                emit(t, "\r\n".into());
                for i in 0..n {
                    // Bursty output: a few lines per millisecond.
                    emit(
                        t + 1 + i / 4,
                        format!("file line {i}: the quick brown fox jumps over the lazy dog\r\n"),
                    );
                }
                emit(t + 2 + n / 4, self.prompt.into());
            }
            Some("seq") => {
                let n: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                emit(t, "\r\n".into());
                for i in 1..=n {
                    emit(t + 1 + i / 8, format!("{i}\r\n"));
                }
                emit(t + 2 + n / 8, self.prompt.into());
            }
            Some("clear") => emit(t, format!("\r\n\x1b[2J\x1b[H{}", self.prompt)),
            Some("passwd") => {
                self.passwd_pending = true;
                self.echo_on = false;
                emit(t, "\r\nNew password: ".into());
            }
            Some("yes") => {
                self.flooding = true;
                self.flood_line = 0;
                self.next_flood_at = t;
                emit(t, "\r\n".into());
            }
            Some(other) => {
                emit(
                    t + 2,
                    format!("\r\n{}: command not found\r\n{}", other, self.prompt),
                );
            }
        }
    }
}

impl Application for LineShell {
    fn start(&mut self, now: Millis) -> Vec<TimedWrite> {
        vec![TimedWrite {
            at: now,
            bytes: self.prompt.as_bytes().to_vec(),
        }]
    }

    fn on_input(&mut self, now: Millis, bytes: &[u8]) -> Vec<TimedWrite> {
        let mut out = Vec::new();
        for &b in bytes {
            match b {
                0x03 => {
                    // Control-C: interrupt whatever is running.
                    self.flooding = false;
                    self.passwd_pending = false;
                    self.echo_on = true;
                    self.line.clear();
                    out.push(TimedWrite {
                        at: now + self.echo_delay,
                        bytes: format!("^C\r\n{}", self.prompt).into_bytes(),
                    });
                }
                0x0d => self.run_command(now, &mut out),
                0x7f | 0x08 if !self.line.is_empty() => {
                    self.line.pop();
                    if self.echo_on {
                        out.push(TimedWrite {
                            at: now + self.echo_delay,
                            bytes: b"\x08 \x08".to_vec(),
                        });
                    }
                }
                0x20..=0x7e => {
                    self.line.push(b as char);
                    if self.echo_on {
                        out.push(TimedWrite {
                            at: now + self.echo_delay,
                            bytes: vec![b],
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    fn poll(&mut self, now: Millis) -> Vec<TimedWrite> {
        let mut out = Vec::new();
        // A runaway process writes far faster than any link can carry.
        while self.flooding && self.next_flood_at <= now {
            let mut chunk = String::new();
            for _ in 0..20 {
                chunk.push_str(&format!(
                    "y{}\r\n",
                    "y".repeat((self.flood_line % 40) as usize)
                ));
                self.flood_line += 1;
            }
            out.push(TimedWrite {
                at: self.next_flood_at,
                bytes: chunk.into_bytes(),
            });
            self.next_flood_at += 1;
        }
        out
    }

    fn next_wakeup(&self, _now: Millis) -> Option<Millis> {
        // A running flood writes another chunk every millisecond; the
        // event-driven server must poll at exactly that cadence to match
        // the 1 ms reference loop.
        self.flooding.then_some(self.next_flood_at)
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, kind_tag::LINE_SHELL);
        put_string(&mut out, &self.line);
        put_bool(&mut out, self.echo_on);
        put_varint(&mut out, self.echo_delay);
        put_bool(&mut out, self.flooding);
        put_varint(&mut out, self.next_flood_at);
        put_varint(&mut out, self.flood_line);
        put_bool(&mut out, self.passwd_pending);
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        type Parsed = (String, bool, Millis, bool, Millis, u64, bool);
        fn parse(bytes: &[u8]) -> Option<Parsed> {
            let mut r = Reader::new(bytes);
            (r.varint().ok()? == kind_tag::LINE_SHELL).then_some(())?;
            let line = get_string(&mut r)?;
            let echo_on = get_bool(&mut r)?;
            let echo_delay = r.varint().ok()?;
            let flooding = get_bool(&mut r)?;
            let next_flood_at = r.varint().ok()?;
            let flood_line = r.varint().ok()?;
            let passwd_pending = get_bool(&mut r)?;
            (r.remaining() == 0).then_some(())?;
            Some((
                line,
                echo_on,
                echo_delay,
                flooding,
                next_flood_at,
                flood_line,
                passwd_pending,
            ))
        }
        let Some((line, echo_on, echo_delay, flooding, next_flood_at, flood_line, passwd_pending)) =
            parse(bytes)
        else {
            return false;
        };
        self.line = line;
        self.echo_on = echo_on;
        self.echo_delay = echo_delay;
        self.flooding = flooding;
        self.next_flood_at = next_flood_at;
        self.flood_line = flood_line;
        self.passwd_pending = passwd_pending;
        true
    }
}

// ---------------------------------------------------------------------
// Editor
// ---------------------------------------------------------------------

/// A raw-mode full-screen editor (the emacs/vim class): it echoes typed
/// characters itself, repaints a status line, and navigation moves the
/// cursor without printing anything predictable.
#[derive(Debug)]
pub struct Editor {
    lines: Vec<String>,
    row: usize,
    col: usize,
    width: usize,
    height: usize,
    echo_delay: Millis,
    /// vi-style: false means keystrokes are commands, not text.
    insert_mode: bool,
    started: bool,
}

impl Editor {
    /// An editor on an 80×24 screen with a few lines of existing text.
    pub fn new() -> Self {
        Editor {
            lines: vec![
                "fn main() {".to_string(),
                "    println!(\"hello\");".to_string(),
                "}".to_string(),
            ],
            row: 0,
            col: 0,
            width: 80,
            height: 24,
            echo_delay: 3,
            insert_mode: true,
            started: false,
        }
    }

    fn status_row(&self) -> usize {
        self.height - 1
    }

    fn full_redraw(&self, at: Millis) -> TimedWrite {
        let mut s = String::from("\x1b[?1049h\x1b[2J\x1b[H");
        for (i, line) in self.lines.iter().take(self.height - 1).enumerate() {
            s.push_str(&format!(
                "\x1b[{};1H{}",
                i + 1,
                &line[..line.len().min(self.width)]
            ));
        }
        s.push_str(&self.status_line());
        s.push_str(&self.cursor_goto());
        TimedWrite {
            at,
            bytes: s.into_bytes(),
        }
    }

    fn status_line(&self) -> String {
        format!(
            "\x1b[{};1H\x1b[7m-- {} -- {}:{}\x1b[K\x1b[0m",
            self.status_row() + 1,
            if self.insert_mode { "INSERT" } else { "NORMAL" },
            self.row + 1,
            self.col + 1
        )
    }

    fn cursor_goto(&self) -> String {
        format!("\x1b[{};{}H", self.row + 1, self.col + 1)
    }
}

impl Default for Editor {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for Editor {
    fn start(&mut self, now: Millis) -> Vec<TimedWrite> {
        self.started = true;
        vec![self.full_redraw(now)]
    }

    fn on_input(&mut self, now: Millis, bytes: &[u8]) -> Vec<TimedWrite> {
        let at = now + self.echo_delay;
        let emit = |s: String| {
            vec![TimedWrite {
                at,
                bytes: s.into_bytes(),
            }]
        };
        match bytes {
            b"\x1b[A" => {
                self.row = self.row.saturating_sub(1);
                self.col = self
                    .col
                    .min(self.lines.get(self.row).map_or(0, |l| l.len()));
                emit(format!("{}{}", self.status_line(), self.cursor_goto()))
            }
            b"\x1b[B" => {
                self.row = (self.row + 1).min(self.lines.len().saturating_sub(1));
                self.col = self
                    .col
                    .min(self.lines.get(self.row).map_or(0, |l| l.len()));
                emit(format!("{}{}", self.status_line(), self.cursor_goto()))
            }
            b"\x1b[C" => {
                self.col = (self.col + 1).min(self.lines.get(self.row).map_or(0, |l| l.len()));
                emit(format!("{}{}", self.status_line(), self.cursor_goto()))
            }
            b"\x1b[D" => {
                self.col = self.col.saturating_sub(1);
                emit(format!("{}{}", self.status_line(), self.cursor_goto()))
            }
            b"\x1b" => {
                // vi mode switch: the multi-mode behaviour of §3.2.
                self.insert_mode = false;
                emit(format!("{}{}", self.status_line(), self.cursor_goto()))
            }
            [b'i'] if !self.insert_mode => {
                self.insert_mode = true;
                emit(format!("{}{}", self.status_line(), self.cursor_goto()))
            }
            b"\r" => {
                if self.insert_mode {
                    let rest = self.lines[self.row].split_off(self.col);
                    self.lines.insert(self.row + 1, rest);
                    self.row += 1;
                    self.col = 0;
                    // Repaint from the split row down.
                    let mut s = String::new();
                    for r in self.row.saturating_sub(1)..self.lines.len().min(self.height - 1) {
                        s.push_str(&format!("\x1b[{};1H\x1b[K{}", r + 1, self.lines[r]));
                    }
                    s.push_str(&self.status_line());
                    s.push_str(&self.cursor_goto());
                    emit(s)
                } else {
                    Vec::new()
                }
            }
            [0x7f] | [0x08] => {
                if self.insert_mode && self.col > 0 {
                    self.col -= 1;
                    self.lines[self.row].remove(self.col);
                    let tail: String = self.lines[self.row][self.col..].to_string();
                    emit(format!(
                        "{}{tail}\x1b[K{}{}",
                        self.cursor_goto(),
                        self.status_line(),
                        self.cursor_goto()
                    ))
                } else {
                    Vec::new()
                }
            }
            [b] if *b >= 0x20 && *b != 0x7f => {
                if self.insert_mode {
                    let ch = *b as char;
                    if self.col <= self.lines[self.row].len() {
                        self.lines[self.row].insert(self.col, ch);
                    }
                    self.col += 1;
                    let tail: String = self.lines[self.row][self.col - 1..].to_string();
                    // Echo: character plus shifted tail plus status update.
                    let mut s = format!("\x1b[{};{}H{tail}", self.row + 1, self.col);
                    s.push_str(&self.status_line());
                    s.push_str(&self.cursor_goto());
                    emit(s)
                } else if *b == b'q' {
                    // Quit from normal mode: leave the alternate screen.
                    emit("\x1b[?1049l".to_string())
                } else {
                    // Normal-mode commands we don't model: status flash.
                    emit(format!("{}{}", self.status_line(), self.cursor_goto()))
                }
            }
            _ => Vec::new(),
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, kind_tag::EDITOR);
        put_varint(&mut out, self.lines.len() as u64);
        for line in &self.lines {
            put_string(&mut out, line);
        }
        put_varint(&mut out, self.row as u64);
        put_varint(&mut out, self.col as u64);
        put_varint(&mut out, self.width as u64);
        put_varint(&mut out, self.height as u64);
        put_varint(&mut out, self.echo_delay);
        put_bool(&mut out, self.insert_mode);
        put_bool(&mut out, self.started);
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        type Parsed = (Vec<String>, usize, usize, usize, usize, Millis, bool, bool);
        fn parse(bytes: &[u8]) -> Option<Parsed> {
            let mut r = Reader::new(bytes);
            (r.varint().ok()? == kind_tag::EDITOR).then_some(())?;
            let n = r.varint().ok()? as usize;
            let mut lines = Vec::new();
            for _ in 0..n {
                lines.push(get_string(&mut r)?);
            }
            let row = r.varint().ok()? as usize;
            let col = r.varint().ok()? as usize;
            let width = r.varint().ok()? as usize;
            let height = r.varint().ok()? as usize;
            let echo_delay = r.varint().ok()?;
            let insert_mode = get_bool(&mut r)?;
            let started = get_bool(&mut r)?;
            (r.remaining() == 0).then_some(())?;
            // Cursor invariants the editor relies on everywhere.
            (!lines.is_empty() && row < lines.len() && col <= lines[row].len()).then_some(())?;
            (width >= 1 && height >= 2).then_some(())?;
            Some((
                lines,
                row,
                col,
                width,
                height,
                echo_delay,
                insert_mode,
                started,
            ))
        }
        let Some((lines, row, col, width, height, echo_delay, insert_mode, started)) = parse(bytes)
        else {
            return false;
        };
        self.lines = lines;
        self.row = row;
        self.col = col;
        self.width = width;
        self.height = height;
        self.echo_delay = echo_delay;
        self.insert_mode = insert_mode;
        self.started = started;
        true
    }
}

// ---------------------------------------------------------------------
// Pager
// ---------------------------------------------------------------------

/// A `less`-style pager: space pages forward, `b` back, `q` quits. Every
/// navigation keystroke repaints the whole screen — unpredictable by
/// design.
#[derive(Debug)]
pub struct Pager {
    content: Vec<String>,
    top: usize,
    width: usize,
    height: usize,
    echo_delay: Millis,
}

impl Pager {
    /// A pager over `n` generated lines of text.
    pub fn new(n: usize) -> Self {
        Pager {
            content: (0..n)
                .map(|i| {
                    format!("{i:5}  Lorem ipsum dolor sit amet, consectetur adipiscing elit #{i}")
                })
                .collect(),
            top: 0,
            width: 80,
            height: 24,
            echo_delay: 3,
        }
    }

    fn redraw(&self, at: Millis) -> TimedWrite {
        let mut s = String::from("\x1b[2J\x1b[H");
        let body = self.height - 1;
        for (i, line) in self.content.iter().skip(self.top).take(body).enumerate() {
            s.push_str(&format!(
                "\x1b[{};1H{}",
                i + 1,
                &line[..line.len().min(self.width)]
            ));
        }
        s.push_str(&format!(
            "\x1b[{};1H\x1b[7m--More--({}%)\x1b[0m",
            self.height,
            ((self.top + body).min(self.content.len())) * 100 / self.content.len().max(1)
        ));
        TimedWrite {
            at,
            bytes: s.into_bytes(),
        }
    }
}

impl Application for Pager {
    fn start(&mut self, now: Millis) -> Vec<TimedWrite> {
        vec![
            TimedWrite {
                at: now,
                bytes: b"\x1b[?1049h".to_vec(),
            },
            self.redraw(now),
        ]
    }

    fn on_input(&mut self, now: Millis, bytes: &[u8]) -> Vec<TimedWrite> {
        let at = now + self.echo_delay;
        let body = self.height - 1;
        match bytes {
            b" " | b"f" | b"\x1b[6~" => {
                if self.top + body < self.content.len() {
                    self.top += body;
                }
                vec![self.redraw(at)]
            }
            b"b" | b"\x1b[5~" => {
                self.top = self.top.saturating_sub(body);
                vec![self.redraw(at)]
            }
            b"j" | b"\x1b[B" => {
                if self.top + body < self.content.len() {
                    self.top += 1;
                }
                vec![self.redraw(at)]
            }
            b"k" | b"\x1b[A" => {
                self.top = self.top.saturating_sub(1);
                vec![self.redraw(at)]
            }
            b"q" => vec![TimedWrite {
                at,
                bytes: b"\x1b[?1049l".to_vec(),
            }],
            _ => Vec::new(),
        }
    }

    fn save_state(&self) -> Vec<u8> {
        // Content is derived from the construction-time line count; only
        // the scroll position is dynamic.
        let mut out = Vec::new();
        put_varint(&mut out, kind_tag::PAGER);
        put_varint(&mut out, self.top as u64);
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some(top) = (|| {
            (r.varint().ok()? == kind_tag::PAGER).then_some(())?;
            let top = r.varint().ok()? as usize;
            (r.remaining() == 0).then_some(())?;
            (top <= self.content.len()).then_some(())?;
            Some(top)
        })() else {
            return false;
        };
        self.top = top;
        true
    }
}

// ---------------------------------------------------------------------
// MailReader
// ---------------------------------------------------------------------

/// An alpine/mutt-style mail index: `j`/`k`/`n` move a highlight bar,
/// ENTER opens a message, `i` returns to the index. The paper's example of
/// navigation "which cannot be predicted locally" (§3.2: "n" to move to
/// the next e-mail message).
#[derive(Debug)]
pub struct MailReader {
    subjects: Vec<String>,
    selected: usize,
    reading: bool,
    width: usize,
    height: usize,
    echo_delay: Millis,
}

impl MailReader {
    /// A mailbox with `n` messages.
    pub fn new(n: usize) -> Self {
        MailReader {
            subjects: (0..n)
                .map(|i| {
                    format!(
                        "  {} person{}@example.com   Re: meeting notes #{}",
                        i + 1,
                        i % 7,
                        i
                    )
                })
                .collect(),
            selected: 0,
            reading: false,
            width: 80,
            height: 24,
            echo_delay: 4,
        }
    }

    fn draw_index(&self, at: Millis) -> TimedWrite {
        let mut s = String::from("\x1b[2J\x1b[H\x1b[7m  MAILBOX  \x1b[0m\r\n");
        for (i, subj) in self.subjects.iter().take(self.height - 3).enumerate() {
            let subj = &subj[..subj.len().min(self.width)];
            if i == self.selected {
                s.push_str(&format!("\x1b[{};1H\x1b[7m{}\x1b[0m", i + 2, subj));
            } else {
                s.push_str(&format!("\x1b[{};1H{}", i + 2, subj));
            }
        }
        s.push_str(&format!("\x1b[{};1H? Help  q Quit  n Next", self.height));
        TimedWrite {
            at,
            bytes: s.into_bytes(),
        }
    }

    fn move_bar(&self, old: usize, at: Millis) -> TimedWrite {
        // Realistic mail clients repaint only the two affected rows.
        let mut s = String::new();
        s.push_str(&format!("\x1b[{};1H\x1b[K{}", old + 2, self.subjects[old]));
        s.push_str(&format!(
            "\x1b[{};1H\x1b[7m{}\x1b[0m",
            self.selected + 2,
            self.subjects[self.selected]
        ));
        TimedWrite {
            at,
            bytes: s.into_bytes(),
        }
    }

    fn draw_message(&self, at: Millis) -> TimedWrite {
        let mut s = String::from("\x1b[2J\x1b[H");
        s.push_str(&format!(
            "From: person@example.com\r\nSubject: {}\r\n\r\n",
            self.subjects[self.selected].trim()
        ));
        for p in 0..12 {
            s.push_str(&format!(
                "Body paragraph {p}: text text text text text.\r\n"
            ));
        }
        TimedWrite {
            at,
            bytes: s.into_bytes(),
        }
    }
}

impl Application for MailReader {
    fn start(&mut self, now: Millis) -> Vec<TimedWrite> {
        vec![
            TimedWrite {
                at: now,
                bytes: b"\x1b[?1049h".to_vec(),
            },
            self.draw_index(now),
        ]
    }

    fn on_input(&mut self, now: Millis, bytes: &[u8]) -> Vec<TimedWrite> {
        let at = now + self.echo_delay;
        let max = self.subjects.len().min(self.height - 3).saturating_sub(1);
        match bytes {
            b"j" | b"n" | b"\x1b[B" if !self.reading => {
                let old = self.selected;
                self.selected = (self.selected + 1).min(max);
                if old == self.selected {
                    Vec::new()
                } else {
                    vec![self.move_bar(old, at)]
                }
            }
            b"k" | b"p" | b"\x1b[A" if !self.reading => {
                let old = self.selected;
                self.selected = self.selected.saturating_sub(1);
                if old == self.selected {
                    Vec::new()
                } else {
                    vec![self.move_bar(old, at)]
                }
            }
            b"\r" if !self.reading => {
                self.reading = true;
                vec![self.draw_message(at)]
            }
            b"i" | b"q" if self.reading => {
                self.reading = false;
                vec![self.draw_index(at)]
            }
            b"q" => vec![TimedWrite {
                at,
                bytes: b"\x1b[?1049l".to_vec(),
            }],
            _ => Vec::new(),
        }
    }

    fn save_state(&self) -> Vec<u8> {
        // Subjects derive from the construction-time message count; the
        // highlight position and read/index mode are the dynamic state.
        let mut out = Vec::new();
        put_varint(&mut out, kind_tag::MAIL_READER);
        put_varint(&mut out, self.selected as u64);
        put_bool(&mut out, self.reading);
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = Reader::new(bytes);
        let Some((selected, reading)) = (|| {
            (r.varint().ok()? == kind_tag::MAIL_READER).then_some(())?;
            let selected = r.varint().ok()? as usize;
            let reading = get_bool(&mut r)?;
            (r.remaining() == 0).then_some(())?;
            (selected < self.subjects.len().max(1)).then_some(())?;
            Some((selected, reading))
        })() else {
            return false;
        };
        self.selected = selected;
        self.reading = reading;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_bytes(writes: &[TimedWrite]) -> Vec<u8> {
        writes.iter().flat_map(|w| w.bytes.clone()).collect()
    }

    #[test]
    fn shell_echoes_printables() {
        let mut sh = LineShell::new();
        let w = sh.on_input(100, b"l");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].bytes, b"l");
        assert_eq!(w[0].at, 102); // 2 ms echo delay
    }

    #[test]
    fn shell_runs_echo_command() {
        let mut sh = LineShell::new();
        sh.on_input(0, b"echo hi");
        let w = sh.on_input(10, b"\r");
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        assert!(out.contains("hi"));
        assert!(out.contains("$ "));
    }

    #[test]
    fn shell_backspace_erases() {
        let mut sh = LineShell::new();
        sh.on_input(0, b"ab");
        let w = sh.on_input(5, b"\x7f");
        assert_eq!(w[0].bytes, b"\x08 \x08");
        // Line is now "a"; backspace on empty line echoes nothing.
        sh.on_input(6, b"\x7f");
        let w = sh.on_input(7, b"\x7f");
        assert!(w.is_empty());
    }

    #[test]
    fn passwd_suppresses_echo_until_enter() {
        let mut sh = LineShell::new();
        sh.on_input(0, b"passwd");
        sh.on_input(5, b"\r");
        // Typing the password produces no echo at all.
        let w = sh.on_input(50, b"secret");
        assert!(w.is_empty(), "passwd must not echo, got {w:?}");
        let w = sh.on_input(100, b"\r");
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        assert!(out.contains("updated"));
    }

    #[test]
    fn yes_floods_until_interrupted() {
        let mut sh = LineShell::new();
        sh.on_input(0, b"yes");
        sh.on_input(1, b"\r");
        let flood = sh.poll(100);
        assert!(!flood.is_empty());
        assert!(all_bytes(&flood).len() > 1000, "flood must be heavy");
        sh.on_input(101, b"\x03");
        // After the interrupt, catch up the flood clock, then silence.
        sh.poll(101);
        let after = sh.poll(200);
        assert!(after.is_empty());
    }

    #[test]
    fn editor_echoes_in_insert_mode() {
        let mut ed = Editor::new();
        ed.start(0);
        let w = ed.on_input(10, b"x");
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        assert!(out.contains('x'));
    }

    #[test]
    fn editor_normal_mode_does_not_insert() {
        let mut ed = Editor::new();
        ed.start(0);
        ed.on_input(10, b"\x1b"); // to normal mode
        let before = ed.lines.clone();
        ed.on_input(20, b"x");
        assert_eq!(ed.lines, before);
        ed.on_input(30, b"i"); // back to insert
        ed.on_input(40, b"y");
        assert_ne!(ed.lines, before);
    }

    #[test]
    fn editor_arrows_move_without_echoing_text() {
        let mut ed = Editor::new();
        ed.start(0);
        let w = ed.on_input(10, b"\x1b[B");
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        // Status update + cursor motion only; no inserted characters.
        assert!(out.contains("\x1b["));
        assert_eq!(ed.row, 1);
    }

    #[test]
    fn pager_pages_through_content() {
        let mut pg = Pager::new(100);
        pg.start(0);
        assert_eq!(pg.top, 0);
        pg.on_input(10, b" ");
        assert_eq!(pg.top, 23);
        pg.on_input(20, b"b");
        assert_eq!(pg.top, 0);
    }

    #[test]
    fn pager_redraws_fully_on_navigation() {
        let mut pg = Pager::new(100);
        pg.start(0);
        let w = pg.on_input(10, b" ");
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        assert!(out.contains("\x1b[2J"), "pager repaints the screen");
    }

    #[test]
    fn mail_reader_moves_highlight() {
        let mut m = MailReader::new(20);
        m.start(0);
        let w = m.on_input(10, b"n");
        assert_eq!(m.selected, 1);
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        assert!(out.contains("\x1b[7m"), "bar is drawn in inverse");
        m.on_input(20, b"k");
        assert_eq!(m.selected, 0);
    }

    #[test]
    fn mail_reader_opens_and_closes_messages() {
        let mut m = MailReader::new(5);
        m.start(0);
        let w = m.on_input(10, b"\r");
        assert!(m.reading);
        let out = String::from_utf8(all_bytes(&w)).unwrap();
        assert!(out.contains("Body paragraph"));
        m.on_input(20, b"i");
        assert!(!m.reading);
    }

    #[test]
    fn app_state_round_trips_for_every_kind() {
        // Drive each app into a non-default state, save it, restore onto a
        // fresh twin, and check the twin behaves identically afterwards.
        let mut sh = LineShell::new();
        sh.on_input(0, b"passwd");
        sh.on_input(5, b"\r");
        sh.on_input(10, b"hunter2");
        let mut sh2 = LineShell::new();
        assert!(sh2.restore_state(&sh.save_state()));
        assert_eq!(
            sh.on_input(100, b"\r").len(),
            sh2.on_input(100, b"\r").len()
        );
        assert!(sh2.echo_on);

        let mut ed = Editor::new();
        ed.start(0);
        ed.on_input(10, b"z");
        ed.on_input(20, b"\x1b");
        let mut ed2 = Editor::new();
        assert!(ed2.restore_state(&ed.save_state()));
        assert_eq!(ed.lines, ed2.lines);
        assert_eq!(
            all_bytes(&ed.on_input(30, b"i")),
            all_bytes(&ed2.on_input(30, b"i"))
        );

        let mut pg = Pager::new(100);
        pg.start(0);
        pg.on_input(10, b" ");
        let mut pg2 = Pager::new(100);
        assert!(pg2.restore_state(&pg.save_state()));
        assert_eq!(pg2.top, 23);

        let mut m = MailReader::new(20);
        m.start(0);
        m.on_input(10, b"n");
        m.on_input(20, b"\r");
        let mut m2 = MailReader::new(20);
        assert!(m2.restore_state(&m.save_state()));
        assert_eq!(m2.selected, 1);
        assert!(m2.reading);
    }

    #[test]
    fn app_state_rejects_mismatched_kind_and_garbage() {
        let sh = LineShell::new();
        let mut ed = Editor::new();
        let before = format!("{ed:?}");
        // A shell snapshot must not restore onto an editor.
        assert!(!ed.restore_state(&sh.save_state()));
        // Truncation at every cut point is rejected, never half-applied.
        let full = ed.save_state();
        for cut in 0..full.len() {
            assert!(!ed.restore_state(&full[..cut]));
        }
        assert!(!ed.restore_state(b"\xff\xff\xff"));
        assert_eq!(
            format!("{ed:?}"),
            before,
            "failed restores leave app unchanged"
        );

        // Out-of-range scroll position is rejected.
        let mut small = Pager::new(5);
        let mut big = Pager::new(500);
        big.on_input(0, b" ");
        big.on_input(1, b" ");
        assert!(!small.restore_state(&big.save_state()));
    }

    #[test]
    fn apps_are_deterministic() {
        let run = || {
            let mut sh = LineShell::new();
            let mut bytes = Vec::new();
            bytes.extend(all_bytes(&sh.start(0)));
            bytes.extend(all_bytes(&sh.on_input(10, b"ls")));
            bytes.extend(all_bytes(&sh.on_input(20, b"\r")));
            bytes
        };
        assert_eq!(run(), run());
    }
}
