//! The event-driven session driver.
//!
//! Every harness in this tree used to hand-write the same pump: tick both
//! endpoints, advance the simulator one millisecond, drain two mailboxes,
//! repeat — a thousand iterations per virtual second even when both ends
//! were idle. [`SessionLoop`] replaces those loops with one driver that
//! steps straight to the next interesting instant,
//! `min(endpoint wakeups, substrate event, caller deadline)`, over any
//! [`Channel`] substrate — the discrete-event simulator or a live UDP
//! socket — and reports what happened as typed [`SessionEvent`]s.
//!
//! The per-session mechanics live in [`SessionDriver`], which owns no
//! I/O: it ticks a session's endpoints, computes the next interesting
//! instant, delivers datagrams, and tracks peer-timeout episodes.
//! [`SessionLoop`] is `SessionDriver` + one dedicated channel;
//! `crate::hub::ServerHub` is many `SessionDriver`s + one
//! `mosh_net::Poller` + a timer wheel.
//!
//! The stepping is **schedule-identical** to the 1 ms reference loop (a
//! root-level test asserts byte-identical wire transcripts): an endpoint's
//! [`Endpoint::next_wakeup`] is a promise that `tick` is a no-op before
//! that time, so skipping the quiet milliseconds cannot change a single
//! datagram. The ordering contract at any instant `t` matches the
//! reference loop exactly: deliveries at `t` are received first, then
//! caller injections (keystrokes) at `t`, then `tick(t)`. `pump_until`
//! therefore processes arrivals *at* its target but leaves the target
//! tick to the next call, after the caller has injected input.

use crate::client::MoshClient;
use crate::server::MoshServer;
use crate::Millis;
use mosh_net::{Addr, Channel, Datagram};
use mosh_ssp::datagram::Opened;
use std::collections::HashMap;

/// Something a session endpoint did or learned, stamped with when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A client applied a new authoritative server frame. `echo_ack` is
    /// the newest input index the frame provably reflects (§3.2) — replay
    /// harnesses resolve keystroke latencies from exactly this event.
    FrameAdvanced {
        /// When the frame was applied.
        at: Millis,
        /// The server state number now displayed.
        state_num: u64,
        /// Newest input index covered by the server's echo ack.
        echo_ack: u64,
    },
    /// A server re-targeted to a roaming client's new address (§2.2).
    Roamed {
        /// When the first authentic datagram from the new address arrived.
        at: Millis,
        /// The new target address.
        to: Addr,
    },
    /// An endpoint has heard nothing from its peer for longer than the
    /// loop's configured timeout (the client's "last contact" banner).
    PeerTimeout {
        /// When the silence crossed the threshold.
        at: Millis,
        /// How long the peer has been silent.
        silent_for: Millis,
    },
    /// An octet-stream endpoint rendered more output (the SSH baseline);
    /// `total` is cumulative, the quantity its latency measure tracks.
    BytesRendered {
        /// When the bytes were rendered.
        at: Millis,
        /// Cumulative rendered bytes.
        total: u64,
    },
}

/// One timed state machine a [`SessionLoop`] drives: Mosh client or
/// server, an SSH endpoint, a bulk TCP flow, or any test instrument
/// wrapped around one of those.
///
/// `Send` is a supertrait: endpoints are self-contained state machines
/// (no shared interior mutability — the crypto session's counters are
/// `Cell`s, shard-local by construction), which is what lets a sharded
/// hub lease whole sessions to worker threads. `Sync` is deliberately
/// *not* required: a session is only ever driven by one thread at a time.
pub trait Endpoint: Send {
    /// Consumes one wire datagram received at `now` from `from`.
    fn receive(&mut self, now: Millis, from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>);

    /// Runs timers at `now`, appending addressed datagrams to `out`.
    fn tick(&mut self, now: Millis, out: &mut Vec<(Addr, Vec<u8>)>, events: &mut Vec<SessionEvent>);

    /// The earliest future time `tick` could do anything. The contract
    /// that makes event-driven stepping exact: between `now` and the
    /// returned time, `tick` must be a no-op (absent new receives or
    /// caller injections, which re-arm the schedule).
    fn next_wakeup(&self, now: Millis) -> Millis;

    /// Time the peer was last heard from, if this endpoint tracks it
    /// (drives [`SessionEvent::PeerTimeout`]).
    fn last_heard(&self) -> Option<Millis> {
        None
    }

    /// True when `wire` cryptographically authenticates to this endpoint's
    /// session, judged **without** consuming the datagram or mutating any
    /// state — the read-only (`&self`) companion of [`Endpoint::try_open`]
    /// for callers that only need the boolean. The hub's demux itself
    /// probes with `try_open` instead, which keeps the verified plaintext
    /// it already paid for. Endpoints without datagram authentication
    /// (SSH/TCP baselines, test instruments) keep the default `false` and
    /// can only be addressed by a unique receive address.
    fn authenticates(&self, _wire: &[u8]) -> bool {
        false
    }

    /// The decrypt-once demux probe: authenticates **and decrypts**
    /// `wire` without consuming it, returning the opened-datagram token
    /// when it belongs to this endpoint's session. Like
    /// [`Endpoint::authenticates`] this mutates no protocol state — but
    /// the verification decrypt is kept instead of discarded, so the hub
    /// can hand the winner its plaintext via
    /// [`Endpoint::receive_opened`] and an ambiguous-address datagram
    /// crosses AES-OCB exactly once. Endpoints without datagram
    /// authentication keep the default `None`.
    fn try_open(&mut self, _wire: &[u8]) -> Option<Opened> {
        None
    }

    /// The batched demux probe: [`Endpoint::try_open`] over a whole
    /// drained receive batch, appending one verdict per wire to `out` —
    /// strictly per wire, so one inauthentic packet never affects its
    /// batch siblings. Crypto-capable endpoints override this to cross
    /// the cipher once for the whole batch (interleaving AES blocks from
    /// different packets); the default simply probes wire by wire, which
    /// keeps wrappers' per-wire accounting exact.
    fn try_open_many(&mut self, wires: &[&[u8]], out: &mut Vec<Option<Opened>>) {
        for wire in wires {
            let opened = self.try_open(wire);
            out.push(opened);
        }
    }

    /// Consumes a token this endpoint produced from [`Endpoint::try_open`]
    /// — identical observable behavior to [`Endpoint::receive`] of the
    /// original wire, minus the duplicate OCB pass. Only ever called with
    /// this endpoint's own tokens; endpoints whose `try_open` never
    /// returns `Some` never see this call.
    fn receive_opened(
        &mut self,
        now: Millis,
        from: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        let _ = (now, from, opened, events);
        debug_assert!(false, "receive_opened without a matching try_open");
    }

    /// A cheap fingerprint that changes whenever the session's durable
    /// state advances; checkpoint cadence skips sessions whose marker is
    /// unchanged. The default `None` pairs with the default
    /// [`Endpoint::checkpoint`] for endpoints that cannot snapshot.
    fn activity_marker(&self) -> Option<(u64, u64)> {
        None
    }

    /// Serializes this endpoint for migration or crash recovery,
    /// returning the snapshot body and (as a side effect on the endpoint)
    /// capping its outgoing acks at what the snapshot contains. `None`
    /// (the default) marks an endpoint that does not support
    /// checkpointing — such sessions are simply lost when their shard
    /// dies, exactly as before this machinery existed.
    fn checkpoint(&mut self, _now: Millis) -> Option<Vec<u8>> {
        None
    }
}

impl MoshClient {
    /// Emits [`SessionEvent::FrameAdvanced`] when a receive advanced the
    /// displayed server state (shared by the wire and opened paths).
    fn report_frame_advance(&self, before: u64, now: Millis, events: &mut Vec<SessionEvent>) {
        let state_num = self.remote_state_num();
        if state_num != before {
            events.push(SessionEvent::FrameAdvanced {
                at: now,
                state_num,
                echo_ack: self.echo_ack(),
            });
        }
    }
}

impl Endpoint for MoshClient {
    fn receive(&mut self, now: Millis, _from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>) {
        let before = self.remote_state_num();
        MoshClient::receive(self, now, wire);
        self.report_frame_advance(before, now, events);
    }

    fn tick(
        &mut self,
        now: Millis,
        out: &mut Vec<(Addr, Vec<u8>)>,
        _events: &mut Vec<SessionEvent>,
    ) {
        out.extend(MoshClient::tick(self, now));
    }

    fn next_wakeup(&self, now: Millis) -> Millis {
        MoshClient::next_wakeup(self, now)
    }

    fn last_heard(&self) -> Option<Millis> {
        MoshClient::last_heard(self)
    }

    fn authenticates(&self, wire: &[u8]) -> bool {
        MoshClient::authenticates(self, wire)
    }

    fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        MoshClient::try_open(self, wire)
    }

    fn try_open_many(&mut self, wires: &[&[u8]], out: &mut Vec<Option<Opened>>) {
        MoshClient::try_open_many(self, wires, out);
    }

    fn receive_opened(
        &mut self,
        now: Millis,
        _from: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        let before = self.remote_state_num();
        MoshClient::receive_opened(self, now, opened);
        self.report_frame_advance(before, now, events);
    }
}

impl MoshServer {
    /// Emits [`SessionEvent::Roamed`] when a receive re-targeted the
    /// client address (shared by the wire and opened paths).
    fn report_roam(&self, before: Option<Addr>, now: Millis, events: &mut Vec<SessionEvent>) {
        let target = self.target();
        if target != before {
            events.push(SessionEvent::Roamed {
                at: now,
                to: target.expect("target only ever moves to an address"),
            });
        }
    }
}

impl Endpoint for MoshServer {
    fn receive(&mut self, now: Millis, from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>) {
        let before = self.target();
        MoshServer::receive(self, now, from, wire);
        self.report_roam(before, now, events);
    }

    fn tick(
        &mut self,
        now: Millis,
        out: &mut Vec<(Addr, Vec<u8>)>,
        _events: &mut Vec<SessionEvent>,
    ) {
        out.extend(MoshServer::tick(self, now));
    }

    fn next_wakeup(&self, now: Millis) -> Millis {
        MoshServer::next_wakeup(self, now)
    }

    fn last_heard(&self) -> Option<Millis> {
        MoshServer::last_heard(self)
    }

    fn authenticates(&self, wire: &[u8]) -> bool {
        MoshServer::authenticates(self, wire)
    }

    fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        MoshServer::try_open(self, wire)
    }

    fn try_open_many(&mut self, wires: &[&[u8]], out: &mut Vec<Option<Opened>>) {
        MoshServer::try_open_many(self, wires, out);
    }

    fn receive_opened(
        &mut self,
        now: Millis,
        from: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        let before = self.target();
        MoshServer::receive_opened(self, now, from, opened);
        self.report_roam(before, now, events);
    }

    fn activity_marker(&self) -> Option<(u64, u64)> {
        Some(MoshServer::activity_marker(self))
    }

    fn checkpoint(&mut self, _now: Millis) -> Option<Vec<u8>> {
        Some(self.checkpoint_body())
    }
}

/// An endpoint bound to the address it receives on. The caller keeps
/// ownership of the endpoint and lends it per pump; roaming is the caller
/// assigning a new `addr` between pumps (sim) or rebinding the UDP
/// channel (live).
pub struct Party<'a> {
    /// The address this endpoint currently sends from and receives on.
    pub addr: Addr,
    /// The state machine itself.
    pub endpoint: &'a mut dyn Endpoint,
}

impl<'a> Party<'a> {
    /// Binds `endpoint` to `addr`.
    pub fn new(addr: Addr, endpoint: &'a mut dyn Endpoint) -> Self {
        Party { addr, endpoint }
    }
}

/// The per-session half of a driver: everything a session needs except
/// the I/O substrate.
///
/// A `SessionDriver` ticks a session's endpoints, computes the next
/// interesting instant, delivers datagrams to the party that claims them,
/// and tracks peer-silence episodes. It never owns a channel: the caller
/// supplies a `send` sink and the current time, which is what lets one
/// substrate serve one session ([`SessionLoop`]) or thousands
/// (`crate::hub::ServerHub`) with identical per-session semantics.
#[derive(Debug, Default)]
pub struct SessionDriver {
    peer_timeout: Option<Millis>,
    /// Per address: the `last_heard` value already reported, so each
    /// silence episode yields one [`SessionEvent::PeerTimeout`].
    reported_silence: HashMap<Addr, Millis>,
    /// Scratch buffer for tick output (reused across steps).
    outbox: Vec<(Addr, Vec<u8>)>,
}

impl SessionDriver {
    /// A driver with no peer timeout configured.
    pub fn new() -> Self {
        SessionDriver::default()
    }

    /// Emits [`SessionEvent::PeerTimeout`] when a party's peer has been
    /// silent for `timeout` (once per silence episode); `None` disables.
    pub fn set_peer_timeout(&mut self, timeout: Option<Millis>) {
        self.peer_timeout = timeout;
    }

    /// Ticks every party at `now`, forwarding each produced datagram to
    /// `send` as `(from, to, wire)` in party order — the order that fixes
    /// how same-instant datagrams enter the substrate.
    pub fn tick_parties(
        &mut self,
        parties: &mut [Party<'_>],
        now: Millis,
        send: &mut dyn FnMut(Addr, Addr, Vec<u8>),
        events: &mut Vec<SessionEvent>,
    ) {
        for p in parties.iter_mut() {
            p.endpoint.tick(now, &mut self.outbox, events);
            for (to, wire) in self.outbox.drain(..) {
                send(p.addr, to, wire);
            }
        }
    }

    /// [`SessionDriver::tick_parties`], flushing each party's whole
    /// outbox as **one** batch: `flush` is called at most once per party,
    /// with `from = party.addr` and that party's datagrams in emit order.
    /// Ordering is identical to the per-wire variant — same-instant
    /// datagrams still enter the substrate party by party — but the
    /// substrate sees each party's burst whole, the sendmmsg-shaped seam
    /// a live socket wants (see `mosh_net::Poller::send_many`).
    pub fn tick_parties_batched(
        &mut self,
        parties: &mut [Party<'_>],
        now: Millis,
        flush: &mut dyn FnMut(Addr, Vec<(Addr, Vec<u8>)>),
        events: &mut Vec<SessionEvent>,
    ) {
        for p in parties.iter_mut() {
            p.endpoint.tick(now, &mut self.outbox, events);
            if !self.outbox.is_empty() {
                flush(p.addr, std::mem::take(&mut self.outbox));
            }
        }
    }

    /// The next instant anything can happen for this session, clamped to
    /// `(now, target]`: the earliest endpoint wakeup, the substrate's next
    /// scheduled event (if it can know one), or the caller's target.
    pub fn next_step(
        &self,
        parties: &[Party<'_>],
        now: Millis,
        target: Millis,
        substrate_event: Option<Millis>,
    ) -> Millis {
        let mut next = target;
        for p in parties.iter() {
            next = next.min(p.endpoint.next_wakeup(now));
        }
        if let Some(t) = substrate_event {
            next = next.min(t);
        }
        next.min(target).max(now + 1)
    }

    /// Delivers one datagram to the party whose address it names,
    /// returning false when no party claims it (the datagram is dropped,
    /// as a real socket would).
    pub fn deliver(
        &mut self,
        parties: &mut [Party<'_>],
        now: Millis,
        dg: &Datagram,
        events: &mut Vec<SessionEvent>,
    ) -> bool {
        if let Some(p) = parties.iter_mut().find(|p| p.addr == dg.to) {
            p.endpoint.receive(now, dg.from, &dg.payload, events);
            true
        } else {
            false
        }
    }

    /// Delivers an already-opened datagram (see [`Endpoint::try_open`])
    /// to the party at `to`, returning false when no party claims the
    /// address. The decrypt-once tail of the hub's demux: the winning
    /// endpoint consumes its own token without re-opening the wire.
    pub fn deliver_opened(
        &mut self,
        parties: &mut [Party<'_>],
        now: Millis,
        from: Addr,
        to: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) -> bool {
        if let Some(p) = parties.iter_mut().find(|p| p.addr == to) {
            p.endpoint.receive_opened(now, from, opened, events);
            true
        } else {
            false
        }
    }

    /// Runs the peer-silence check at `now` (a no-op unless a timeout is
    /// configured), emitting one event per party per silence episode.
    pub fn check_timeouts(
        &mut self,
        parties: &[Party<'_>],
        now: Millis,
        events: &mut Vec<SessionEvent>,
    ) {
        let Some(limit) = self.peer_timeout else {
            return;
        };
        for p in parties.iter() {
            // `None` means the endpoint does not track peer contact at
            // all (SSH/TCP endpoints, test instruments) — not "silent
            // since the epoch" — so it never times out. Detecting a peer
            // that was *never* reached is the caller's job.
            let Some(heard) = p.endpoint.last_heard() else {
                continue;
            };
            let silent_for = now.saturating_sub(heard);
            if silent_for < limit {
                // Contact is fresh; re-arm for the next episode.
                self.reported_silence.remove(&p.addr);
            } else if self.reported_silence.get(&p.addr) != Some(&heard) {
                self.reported_silence.insert(p.addr, heard);
                events.push(SessionEvent::PeerTimeout {
                    at: now,
                    silent_for,
                });
            }
        }
    }
}

/// The single-session driver: one [`SessionDriver`] bound to one
/// dedicated [`Channel`] substrate, virtual-time (simulator) or
/// wall-clock (UDP).
pub struct SessionLoop<C: Channel> {
    channel: C,
    driver: SessionDriver,
}

impl<C: Channel> SessionLoop<C> {
    /// A driver over `channel`.
    pub fn new(channel: C) -> Self {
        SessionLoop {
            channel,
            driver: SessionDriver::new(),
        }
    }

    /// Emits [`SessionEvent::PeerTimeout`] when a party's peer has been
    /// silent for `timeout` (once per silence episode).
    pub fn with_peer_timeout(mut self, timeout: Millis) -> Self {
        self.driver.set_peer_timeout(Some(timeout));
        self
    }

    /// The substrate's current time.
    pub fn now(&self) -> Millis {
        self.channel.now()
    }

    /// The substrate (network stats, UDP local address, ...).
    pub fn channel(&self) -> &C {
        &self.channel
    }

    /// Mutable substrate access (register roamed sim addresses, swap link
    /// conditions, rebind a UDP socket, ...).
    pub fn channel_mut(&mut self) -> &mut C {
        &mut self.channel
    }

    /// Unwraps the substrate.
    pub fn into_channel(self) -> C {
        self.channel
    }

    /// Drives `parties` until the channel clock reaches `target`,
    /// returning every event in order.
    ///
    /// Deliveries *at* `target` are processed; the ticks at `target`
    /// happen at the start of the next pump, so callers inject input due
    /// at `target` between calls and the schedule matches the reference
    /// 1 ms loop exactly (receive → inject → tick at each instant).
    pub fn pump_until(&mut self, parties: &mut [Party<'_>], target: Millis) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        let mut now = self.channel.now();
        while now < target {
            // Tick everyone at `now`; ship what they produced.
            let channel = &mut self.channel;
            self.driver.tick_parties(
                parties,
                now,
                &mut |from, to, wire| channel.send(from, to, wire),
                &mut events,
            );

            // Step to the next instant anything can happen.
            let next = self
                .driver
                .next_step(parties, now, target, self.channel.next_event_time());
            now = self.channel.wait_until(next);

            // Deliver everything that arrived by `now`. Datagrams for
            // addresses nobody claims (e.g. a roamed-away source) are
            // dropped, as a real socket would.
            while let Some(dg) = self.channel.poll_any() {
                self.driver.deliver(parties, now, &dg, &mut events);
            }

            self.driver.check_timeouts(parties, now, &mut events);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::LineShell;
    use mosh_crypto::Base64Key;
    use mosh_net::{LinkConfig, Network, Side, SimChannel};
    use mosh_prediction::DisplayPreference;

    fn key() -> Base64Key {
        Base64Key::from_bytes([3u8; 16])
    }

    fn sim_session(seed: u64) -> (SessionLoop<SimChannel>, MoshClient, MoshServer, Addr, Addr) {
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        let c = Addr::new(1, 1000);
        let s = Addr::new(2, 60001);
        net.register(c, Side::Client);
        net.register(s, Side::Server);
        let client = MoshClient::new(key(), s, 80, 24, DisplayPreference::Never);
        let server = MoshServer::new(key(), Box::new(LineShell::new()));
        (SessionLoop::new(SimChannel::new(net)), client, server, c, s)
    }

    #[test]
    fn pump_reaches_prompt_and_echo() {
        let (mut sl, mut client, mut server, c, s) = sim_session(7);
        sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            300,
        );
        assert_eq!(client.server_frame().row_text(0), "$");
        client.keystroke(sl.now(), b"l");
        let t = sl.now() + 300;
        sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            t,
        );
        assert_eq!(client.server_frame().row_text(0), "$ l");
    }

    #[test]
    fn frame_advanced_events_carry_echo_acks() {
        let (mut sl, mut client, mut server, c, s) = sim_session(8);
        sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            300,
        );
        client.keystroke(sl.now(), b"x");
        let idx = client.input_end_index();
        let t = sl.now() + 500;
        let events = sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            t,
        );
        let acked_at = events.iter().find_map(|e| match e {
            SessionEvent::FrameAdvanced { at, echo_ack, .. } if *echo_ack >= idx => Some(*at),
            _ => None,
        });
        // The echo ack needs ~50 ms server-side + a round trip.
        let at = acked_at.expect("keystroke acknowledged in a frame event");
        assert!(at >= 50, "ack at {at}");
    }

    #[test]
    fn roamed_event_fires_on_address_change() {
        let (mut sl, mut client, mut server, c, s) = sim_session(9);
        client.keystroke(0, b"a");
        sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            500,
        );
        assert_eq!(server.target(), Some(c));

        let c2 = Addr::new(99, 4321);
        sl.channel_mut().network_mut().register(c2, Side::Client);
        client.keystroke(sl.now(), b"b");
        let t = sl.now() + 1000;
        let events = sl.pump_until(
            &mut [Party::new(c2, &mut client), Party::new(s, &mut server)],
            t,
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SessionEvent::Roamed { to, .. } if *to == c2)),
            "expected a Roamed event, got {events:?}"
        );
        assert_eq!(server.target(), Some(c2));
        assert_eq!(client.server_frame().row_text(0), "$ ab");
    }

    #[test]
    fn peer_timeout_fires_once_per_silence_episode() {
        let (sl, mut client, mut server, c, s) = sim_session(10);
        let mut sl = SessionLoop::new(sl.into_channel()).with_peer_timeout(2000);
        sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            1000,
        );
        // Cut the link: everything sent from now on is lost.
        let dead = LinkConfig {
            loss: 1.0,
            ..LinkConfig::lan()
        };
        let mut blackout = Network::new(dead.clone(), dead, 10);
        blackout.register(c, Side::Client);
        blackout.register(s, Side::Server);
        // Fast-forward the fresh network so session time stays monotonic
        // across the swap (SimChannel reads its clock from the network).
        blackout.advance_to(sl.now());
        std::mem::swap(sl.channel_mut().network_mut(), &mut blackout);
        let events = sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            20_000,
        );
        let timeouts = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::PeerTimeout { .. }))
            .count();
        assert_eq!(timeouts, 2, "one per endpoint per episode: {events:?}");
    }

    #[test]
    fn idle_sessions_step_in_large_strides() {
        let (mut sl, mut client, mut server, c, s) = sim_session(11);
        sl.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            60_000,
        );
        // A minute of idle session: heartbeats every 3 s, frames only at
        // the start. The emulator carried well under 100 datagrams —
        // confirming the loop did not busy-poll its way there.
        let stats = sl.channel().network().stats();
        assert!(
            stats.up.delivered + stats.down.delivered < 100,
            "idle minute moved {} datagrams",
            stats.up.delivered + stats.down.delivered
        );
        assert!(client.last_heard().is_some());
    }
}
