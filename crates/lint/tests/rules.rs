//! Fixture coverage for every rule — one tripping, one clean, one
//! suppressed snippet each — plus the workspace self-check that keeps
//! the live tree lint-clean under tier-1.
//!
//! Fixtures impersonate in-scope paths (rule scoping is path-driven),
//! so a deliberate violation "in `crates/net`" is a string handed to
//! [`mosh_lint::check_source`] with a `crates/net/src/...` path — no
//! temp files in the real tree.

use mosh_lint::{check_source, Rule};
use std::path::Path;

/// Findings for `src` pretending to live at `path`, as rule names.
fn rules_at(path: &str, src: &str) -> Vec<&'static str> {
    check_source(path, src)
        .into_iter()
        .map(|f| f.rule.name())
        .collect()
}

const HUB: &str = "crates/core/src/hub/fixture.rs";
const NET: &str = "crates/net/src/fixture.rs";

// ---------------------------------------------------------- wallclock

#[test]
fn wallclock_trips_in_sim_scope() {
    let src = "fn pump() { let t = std::time::Instant::now(); }";
    assert_eq!(rules_at(NET, src), vec!["no-wallclock-in-sim"]);
    let sleep = "fn pace() { std::thread::sleep(d); }";
    assert_eq!(rules_at(HUB, sleep), vec!["no-wallclock-in-sim"]);
    let sys = "fn stamp() { let t = SystemTime::now(); }";
    assert_eq!(
        rules_at("crates/core/src/session.rs", sys),
        vec!["no-wallclock-in-sim"]
    );
}

#[test]
fn wallclock_clean_when_time_is_a_parameter() {
    let src = "fn pump(now: Millis) -> Millis { now + 1 }";
    assert!(rules_at(NET, src).is_empty());
}

#[test]
fn wallclock_suppressed_with_reason() {
    let src = "fn epoch() {\n\
               // mosh-lint: allow(no-wallclock-in-sim): real-UDP substrate epoch\n\
               let t = Instant::now();\n}";
    assert!(rules_at(NET, src).is_empty());
}

#[test]
fn wallclock_allowed_in_udp_substrates_bench_and_tests() {
    let src = "fn bind() { let t = Instant::now(); }";
    assert!(rules_at("crates/net/src/channel.rs", src).is_empty());
    assert!(rules_at("crates/net/src/poller.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/bin/b.rs", src).is_empty());
    assert!(rules_at("crates/net/tests/t.rs", src).is_empty());
    let in_test_mod = "#[cfg(test)]\nmod tests {\n fn t() { let x = Instant::now(); }\n}";
    assert!(rules_at(NET, in_test_mod).is_empty());
}

#[test]
fn wallclock_in_strings_and_comments_is_ignored() {
    let src = "// Instant::now() would be wrong here\nfn f() { let s = \"Instant::now()\"; }";
    assert!(rules_at(NET, src).is_empty());
}

// ------------------------------------------------- saturating deadlines

/// The acceptance-criteria case: a deliberate deadline underflow in
/// `crates/net` fails the lint.
#[test]
fn deadline_subtraction_trips() {
    let src = "fn left(deadline: Millis, now: Millis) -> Millis { deadline - now }";
    assert_eq!(rules_at(NET, src), vec!["saturating-deadlines"]);
    let ds = "fn gap(a: Instant, b: Instant) -> Duration { a.duration_since(b) }";
    assert_eq!(rules_at(HUB, ds), vec!["saturating-deadlines"]);
    let method = "fn left(x: Thing, now: Millis) -> Millis { x.deadline() - now }";
    assert_eq!(rules_at(NET, method), vec!["saturating-deadlines"]);
    let compound = "fn tick(&mut self) { self.budget -= self.elapsed; }";
    assert_eq!(rules_at(NET, compound), vec!["saturating-deadlines"]);
}

#[test]
fn deadline_saturating_forms_are_clean() {
    let src = "fn left(deadline: Millis, now: Millis) -> Millis {\n\
               let _ = deadline.saturating_sub(now);\n\
               let _ = a.saturating_duration_since(b);\n\
               deadline.checked_sub(now).unwrap_or(0)\n}";
    assert!(rules_at(NET, src).is_empty());
}

#[test]
fn deadline_rule_ignores_non_time_subtraction() {
    let src = "fn f(v: &[u8]) -> usize { v.len() - 1 }";
    assert!(rules_at(NET, src).is_empty());
    let floats = "fn g(rate: f64, x: f64) -> f64 { rate - x }";
    assert!(rules_at(NET, floats).is_empty());
    let unary = "fn h(deadline: i64) -> i64 { -deadline }";
    assert!(rules_at(NET, unary).is_empty());
    let arrow = "fn a() -> u32 { 1 }";
    assert!(rules_at(NET, arrow).is_empty());
}

#[test]
fn deadline_rule_scoped_to_net_and_hub() {
    let src = "fn left(deadline: Millis, now: Millis) -> Millis { deadline - now }";
    assert!(rules_at("crates/terminal/src/grid.rs", src).is_empty());
}

#[test]
fn deadline_suppressed_with_reason() {
    let src = "fn left(deadline: Millis, now: Millis) -> Millis {\n\
               // mosh-lint: allow(saturating-deadlines): caller guarantees now <= deadline\n\
               deadline - now\n}";
    assert!(rules_at(NET, src).is_empty());
}

// ------------------------------------------------------ bounded channels

/// The acceptance-criteria case: an unbounded `mpsc::channel()` in
/// `crates/net` fails the lint.
#[test]
fn unbounded_channel_trips() {
    let src = "fn wire() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }";
    assert_eq!(rules_at(NET, src), vec!["bounded-channels"]);
    // The import form is caught too, so a later bare `channel()` call
    // cannot slip through unqualified.
    let import =
        "use std::sync::mpsc::{channel, Receiver};\nfn wire() { let (tx, rx) = channel::<u8>(); }";
    assert_eq!(
        rules_at("crates/core/src/hub/router_fixture.rs", import),
        vec!["bounded-channels"]
    );
}

#[test]
fn sync_channel_is_clean() {
    let src = "use std::sync::mpsc::{sync_channel, Receiver, SyncSender};\n\
               fn wire() { let (tx, rx) = sync_channel::<u8>(4); }";
    assert!(rules_at(NET, src).is_empty());
}

#[test]
fn unbounded_channel_outside_net_core_is_clean() {
    let src = "fn wire() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }";
    assert!(rules_at("crates/terminal/src/emulator.rs", src).is_empty());
}

#[test]
fn unbounded_channel_suppressed_with_reason() {
    let src = "fn wire() {\n\
               // mosh-lint: allow(bounded-channels): consumer drains faster than producer by construction\n\
               let (tx, rx) = std::sync::mpsc::channel::<u8>();\n}";
    assert!(rules_at(NET, src).is_empty());
}

// ------------------------------------------------------ safety comments

#[test]
fn unsafe_without_justification_trips() {
    let block = "fn f(p: *mut u8) { unsafe { *p = 0; } }";
    assert_eq!(
        rules_at("crates/crypto/src/x.rs", block),
        vec!["safety-comments"]
    );
    let imp = "unsafe impl Send for Job {}";
    assert_eq!(rules_at(HUB, imp), vec!["safety-comments"]);
    let f = "unsafe fn raw(p: *mut u8) -> u8 { *p }";
    assert_eq!(
        rules_at("crates/crypto/src/x.rs", f),
        vec!["safety-comments"]
    );
}

#[test]
fn unsafe_with_safety_comment_or_doc_is_clean() {
    let block =
        "fn f(p: *mut u8) {\n// SAFETY: p is valid for writes by contract\nunsafe { *p = 0; }\n}";
    assert!(rules_at("crates/crypto/src/x.rs", block).is_empty());
    let inside =
        "fn f(p: *mut u8) {\nunsafe {\n// SAFETY: p is valid for writes by contract\n*p = 0;\n}\n}";
    assert!(rules_at("crates/crypto/src/x.rs", inside).is_empty());
    let doc = "/// # Safety\n/// Caller must check the CPU feature.\n#[target_feature(enable = \"aes\")]\npub unsafe fn go() {}";
    assert!(rules_at("crates/crypto/src/x.rs", doc).is_empty());
}

#[test]
fn unsafe_fn_pointer_type_is_not_a_definition() {
    let src = "struct Job { run: unsafe fn(*mut ()) -> u32 }";
    assert!(rules_at(HUB, src).is_empty());
}

#[test]
fn unsafe_suppressed_with_reason() {
    let src = "fn f(p: *mut u8) {\n\
               // mosh-lint: allow(safety-comments): justification lives on the module doc\n\
               unsafe { *p = 0; }\n}";
    assert!(rules_at("crates/crypto/src/x.rs", src).is_empty());
}

#[test]
fn safety_rule_applies_even_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n fn f(p: *mut u8) { unsafe { *p = 0; } }\n}";
    assert_eq!(
        rules_at("crates/crypto/src/x.rs", src),
        vec!["safety-comments"]
    );
}

// ------------------------------------------------------ unwrap hot path

#[test]
fn unwrap_in_hot_path_trips() {
    let src = "fn pump(x: Option<u8>) -> u8 { x.unwrap() }";
    assert_eq!(rules_at(HUB, src), vec!["no-unwrap-hot-path"]);
    let expect = "fn pump(x: Option<u8>) -> u8 { x.expect(\"always here\") }";
    assert_eq!(
        rules_at("crates/net/src/feed.rs", expect),
        vec!["no-unwrap-hot-path"]
    );
    let panics = "fn pump() { panic!(\"boom\"); }";
    assert_eq!(
        rules_at("crates/net/src/channel.rs", panics),
        vec!["no-unwrap-hot-path"]
    );
}

#[test]
fn unwrap_alternatives_and_cold_paths_are_clean() {
    let src = "fn pump(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
    assert!(rules_at(HUB, src).is_empty());
    let cold = "fn setup(x: Option<u8>) -> u8 { x.unwrap() }";
    assert!(rules_at("crates/core/src/session.rs", cold).is_empty());
    let in_test = "#[test]\nfn t() { Some(1).unwrap(); }";
    assert!(rules_at(HUB, in_test).is_empty());
}

#[test]
fn unwrap_suppressed_with_reason() {
    let src = "fn pump(x: Option<u8>) -> u8 {\n\
               // mosh-lint: allow(no-unwrap-hot-path): index produced by position() two lines up\n\
               x.unwrap()\n}";
    assert!(rules_at(HUB, src).is_empty());
}

// --------------------------------------------------------- suppressions

#[test]
fn suppression_without_reason_is_flagged() {
    let src = "fn pump(x: Option<u8>) -> u8 {\n\
               // mosh-lint: allow(no-unwrap-hot-path)\n\
               x.unwrap()\n}";
    assert_eq!(rules_at(HUB, src), vec!["suppression"]);
}

#[test]
fn suppression_of_unknown_rule_is_flagged() {
    let src = "// mosh-lint: allow(no-such-rule): whatever\nfn f() {}";
    assert_eq!(rules_at(NET, src), vec!["suppression"]);
}

#[test]
fn suppression_only_covers_its_own_rule_and_lines() {
    // Wrong rule: the wallclock finding survives.
    let wrong = "fn f() {\n\
                 // mosh-lint: allow(no-unwrap-hot-path): misdirected\n\
                 let t = Instant::now();\n}";
    assert_eq!(rules_at(NET, wrong), vec!["no-wallclock-in-sim"]);
    // Too far away: two lines above the violation does not count.
    let far = "fn f() {\n\
               // mosh-lint: allow(no-wallclock-in-sim): stale\n\
               let a = 1;\n\
               let t = Instant::now();\n}";
    assert_eq!(rules_at(NET, far), vec!["no-wallclock-in-sim"]);
}

// ----------------------------------------------------------- self-check

/// The live tree must be lint-clean: this is the regression gate that
/// makes every rule part of tier-1, not just of the CI binary.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root");
    let report = mosh_lint::run_workspace(root).expect("workspace scan");
    assert!(
        report.files > 50,
        "walker found only {} files — scan roots look wrong",
        report.files
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "live tree has lint findings:\n{}",
        rendered.join("\n")
    );
}

/// Every suppressable rule is reachable from a fixture (guards against
/// a rule being silently compiled out of `check_all`).
#[test]
fn all_five_rules_fire_somewhere() {
    let by_rule: &[(&str, &str, &str)] = &[
        (
            "no-wallclock-in-sim",
            NET,
            "fn f() { let t = Instant::now(); }",
        ),
        (
            "saturating-deadlines",
            NET,
            "fn f(deadline: u64, now: u64) -> u64 { deadline - now }",
        ),
        (
            "bounded-channels",
            NET,
            "fn f() { let p = std::sync::mpsc::channel::<u8>(); }",
        ),
        (
            "safety-comments",
            NET,
            "fn f(p: *mut u8) { unsafe { *p = 0; } }",
        ),
        (
            "no-unwrap-hot-path",
            HUB,
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        ),
    ];
    for (name, path, src) in by_rule {
        let fired = rules_at(path, src);
        assert!(
            fired.contains(name),
            "{name} did not fire on its fixture: {fired:?}"
        );
        assert!(
            Rule::from_name(name).is_some(),
            "{name} missing from the suppressable set"
        );
    }
}
