//! A minimal Rust lexer — just enough token structure for invariant
//! linting. The workspace is vendored-only, so there is no `syn` or
//! `proc-macro2` to lean on; this hand-rolled pass handles the lexical
//! constructs that would otherwise produce false matches (nested block
//! comments, raw strings, byte strings, char literals vs. lifetimes)
//! and tracks line numbers for reporting.
//!
//! The output is a flat token stream. Comments are kept as tokens —
//! the rule engine needs them for `SAFETY:` proximity checks and
//! allow-directive suppressions — and are split out from code
//! tokens by [`crate::Analysis`].

/// Token classes. The linter only needs enough resolution to tell
/// identifiers, punctuation, literals, and comments apart; keywords are
/// just identifiers with well-known text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `Instant`, ...).
    Ident,
    /// Numeric literal (the exact value is irrelevant to every rule).
    Number,
    /// String literal of any flavor: `"..."`, `r#"..."#`, `b"..."`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// Operator or delimiter; compound operators that matter to the
    /// rules (`->`, `::`, `-=`) are single tokens.
    Punct,
    /// `// ...` to end of line (including doc comments).
    LineComment,
    /// `/* ... */`, possibly nested and spanning lines; the token's
    /// line is where the comment opens.
    BlockComment,
}

/// One token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// Two-character operators lexed as single tokens. Only `->` strictly
/// matters (it must not read as a binary minus) but keeping the common
/// set makes adjacency checks honest. Longer operators (`<<=`) split
/// into a two-char token plus a one-char token, which no rule cares
/// about.
const PUNCT2: &[&str] = &[
    "->", "=>", "::", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "|=",
    "&=", "..", "<<", ">>",
];

/// Lex `src` into a token stream. Unterminated constructs (a string or
/// block comment running to end of file) terminate the stream quietly —
/// the linter runs on code that already compiles, so this only happens
/// on fixture fragments.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (covers `///` and `//!` doc comments).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            toks.push(tok(TokKind::LineComment, &b[start..i], line));
            continue;
        }

        // Block comment, nested per Rust rules.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(tok(TokKind::BlockComment, &b[start..i], start_line));
            continue;
        }

        // Raw strings: r"..." / r#"..."# / br"..." / br#"..."#. The
        // prefix chars only open a string when `#`* then `"` follows —
        // otherwise they lex as an ordinary identifier below.
        if c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r')) {
            let prefix = if c == 'b' { 2 } else { 1 };
            let mut j = i + prefix;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                let start = i;
                let start_line = line;
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == '\n' {
                        line += 1;
                    } else if b[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                toks.push(tok(TokKind::Str, &b[start..i], start_line));
                continue;
            }
        }

        // Byte string b"..." and byte char b'...': normal escape rules.
        if c == 'b' && matches!(b.get(i + 1), Some(&'"') | Some(&'\'')) {
            let quote = b[i + 1];
            let start = i;
            let start_line = line;
            i += 2;
            consume_quoted(&b, &mut i, &mut line, quote);
            let kind = if quote == '"' {
                TokKind::Str
            } else {
                TokKind::Char
            };
            toks.push(tok(kind, &b[start..i], start_line));
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            consume_quoted(&b, &mut i, &mut line, '"');
            toks.push(tok(TokKind::Str, &b[start..i], start_line));
            continue;
        }

        // Char literal vs. lifetime. `'\...'` and `'x'` are chars;
        // `'ident` (no closing quote right after) is a lifetime.
        if c == '\'' {
            let start = i;
            if b.get(i + 1) == Some(&'\\') || b.get(i + 2) == Some(&'\'') {
                i += 1;
                consume_quoted(&b, &mut i, &mut line, '\'');
                toks.push(tok(TokKind::Char, &b[start..i], line));
            } else {
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(tok(TokKind::Lifetime, &b[start..i], line));
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(tok(TokKind::Ident, &b[start..i], line));
            continue;
        }

        // Number. Consumes alphanumerics (hex, suffixes, exponents) and
        // a fractional part when a digit follows the dot, so `1.0` is
        // one token but `0.to_string()` leaves the dot for the method
        // call.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if b.get(i) == Some(&'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            toks.push(tok(TokKind::Number, &b[start..i], line));
            continue;
        }

        // Punctuation: greedy two-char match, else one char.
        if i + 1 < b.len() {
            let pair: String = b[i..i + 2].iter().collect();
            if PUNCT2.contains(&pair.as_str()) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line,
                });
                i += 2;
                continue;
            }
        }
        toks.push(tok(TokKind::Punct, &b[i..i + 1], line));
        i += 1;
    }

    toks
}

/// Advance `*i` past a `quote`-terminated literal body, honoring `\`
/// escapes and counting newlines (strings may span lines).
fn consume_quoted(b: &[char], i: &mut usize, line: &mut u32, quote: char) {
    while *i < b.len() {
        match b[*i] {
            '\\' => *i += 2,
            '\n' => {
                *line += 1;
                *i += 1;
            }
            c if c == quote => {
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

fn tok(kind: TokKind, chars: &[char], line: u32) -> Tok {
    Tok {
        kind,
        text: chars.iter().collect(),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert!(toks.contains(&(TokKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokKind::Punct, ".".into())));
    }

    #[test]
    fn arrow_is_not_minus() {
        let toks = lex("fn f() -> u32 { a - b }");
        let minuses: Vec<_> = toks.iter().filter(|t| t.is_punct("-")).collect();
        assert_eq!(minuses.len(), 1, "only the binary minus should remain");
        assert!(toks.iter().any(|t| t.is_punct("->")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "Instant::now() - panic!"; let r = r"unwrap()";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"quote " inside"#; done"###);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex(r"fn f<'a>(x: &'a str) -> char { '\n' }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = lex("/* outer /* inner */ still */ after\nnext");
        assert!(toks.iter().any(|t| t.is_ident("after")));
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 2);
    }

    #[test]
    fn line_numbers_across_multiline_strings() {
        let toks = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
