//! `mosh-lint` binary: lint the workspace tree, print findings as
//! `file:line: [rule] message`, exit 1 if any survive suppression.
//!
//! Usage: `cargo run -p mosh-lint [workspace-root]`. Without an
//! argument the workspace root is found by walking up from the current
//! directory to the first `Cargo.toml` that sits next to `crates/`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!("mosh-lint: no workspace root found (run from the repo, or pass it)");
                return ExitCode::FAILURE;
            }
        },
    };
    match mosh_lint::run_workspace(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if report.findings.is_empty() {
                eprintln!("mosh-lint: clean — {} files, 0 findings", report.files);
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "mosh-lint: {} finding(s) across {} files",
                    report.findings.len(),
                    report.files
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mosh-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
