//! The five project-invariant rules, plus the meta-rule for malformed
//! suppressions. Each rule is scoped by repo-relative path (see
//! [`Rule::applies_to`]) and — except `safety-comments` — skips test
//! code, both test-only paths and `#[cfg(test)]` / `#[test]` regions
//! within production files.

use crate::lexer::{Tok, TokKind};
use crate::{Analysis, Finding};

/// A named rule. The first five are the suppressable project
/// invariants; [`Rule::Suppression`] reports broken allow directives
/// and cannot itself be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NoWallclockInSim,
    SaturatingDeadlines,
    BoundedChannels,
    SafetyComments,
    NoUnwrapHotPath,
    Suppression,
}

impl Rule {
    pub const SUPPRESSABLE: [Rule; 5] = [
        Rule::NoWallclockInSim,
        Rule::SaturatingDeadlines,
        Rule::BoundedChannels,
        Rule::SafetyComments,
        Rule::NoUnwrapHotPath,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallclockInSim => "no-wallclock-in-sim",
            Rule::SaturatingDeadlines => "saturating-deadlines",
            Rule::BoundedChannels => "bounded-channels",
            Rule::SafetyComments => "safety-comments",
            Rule::NoUnwrapHotPath => "no-unwrap-hot-path",
            Rule::Suppression => "suppression",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::SUPPRESSABLE
            .iter()
            .copied()
            .find(|r| r.name() == name)
    }

    /// Path scope. `path` is repo-relative with `/` separators.
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Schedule-identity: everything except the real-UDP
            // substrates, which exist to translate wall time into the
            // deterministic core's Millis.
            Rule::NoWallclockInSim => {
                !is_test_path(path)
                    && path != "crates/net/src/channel.rs"
                    && path != "crates/net/src/poller.rs"
            }
            Rule::SaturatingDeadlines => {
                !is_test_path(path)
                    && (path.starts_with("crates/net/src/")
                        || path.starts_with("crates/core/src/hub/"))
            }
            Rule::BoundedChannels => {
                !is_test_path(path)
                    && (path.starts_with("crates/net/src/") || path.starts_with("crates/core/src/"))
            }
            // SAFETY discipline holds in test code too.
            Rule::SafetyComments => true,
            Rule::NoUnwrapHotPath => {
                !is_test_path(path)
                    && (path.starts_with("crates/core/src/hub/")
                        || path == "crates/net/src/feed.rs"
                        || path == "crates/net/src/channel.rs")
            }
            Rule::Suppression => true,
        }
    }

    /// Whether findings inside `#[cfg(test)]` / `#[test]` regions are
    /// dropped for this rule.
    fn skips_test_code(self) -> bool {
        !matches!(self, Rule::SafetyComments)
    }
}

/// Paths whose whole contents are test/bench scope.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.starts_with("crates/bench/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Run every rule that applies to `a.path`, appending findings.
pub(crate) fn check_all(a: &Analysis, out: &mut Vec<Finding>) {
    let mut emit = |rule: Rule, line: u32, message: String| {
        if rule.applies_to(&a.path) && !(rule.skips_test_code() && a.is_test_line(line)) {
            out.push(Finding {
                path: a.path.clone(),
                line,
                rule,
                message,
            });
        }
    };
    no_wallclock(a, &mut emit);
    saturating_deadlines(a, &mut emit);
    bounded_channels(a, &mut emit);
    safety_comments(a, &mut emit);
    no_unwrap_hot_path(a, &mut emit);
}

fn tok_at(code: &[Tok], k: usize) -> Option<&Tok> {
    code.get(k)
}

// ---------------------------------------------------------------- rule 1

/// `Instant::now`, `SystemTime::now`, `thread::sleep` (call sites and
/// `use` paths both contain the two-segment sequence).
fn no_wallclock(a: &Analysis, emit: &mut impl FnMut(Rule, u32, String)) {
    let code = &a.code;
    for k in 0..code.len() {
        let Some(seg) = tok_at(code, k).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let pair = match seg.text.as_str() {
            "Instant" | "SystemTime" => "now",
            "thread" => "sleep",
            _ => continue,
        };
        if tok_at(code, k + 1).is_some_and(|t| t.is_punct("::"))
            && tok_at(code, k + 2).is_some_and(|t| t.is_ident(pair))
        {
            emit(
                Rule::NoWallclockInSim,
                seg.line,
                format!(
                    "`{}::{}` breaks schedule-identity; take time as a parameter, or keep \
                     wall-clock reads inside UdpChannel/UdpPoller/bench/test code",
                    seg.text, pair
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- rule 2

/// Identifier names treated as time-valued for subtraction checks.
/// Lexical analysis has no types, so this is a curated list covering
/// the workspace's deadline vocabulary; `saturating_sub` /
/// `checked_sub` / `saturating_duration_since` are different
/// identifiers and pass untouched.
fn time_like(name: &str) -> bool {
    const EXACT: &[&str] = &[
        "now",
        "deadline",
        "due",
        "at",
        "start",
        "elapsed",
        "timeout",
        "expiry",
        "expires",
        "wakeup",
        "Instant",
        "Duration",
        "SystemTime",
    ];
    const SUFFIX: &[&str] = &[
        "_at",
        "_time",
        "_deadline",
        "_due",
        "_until",
        "_ms",
        "_millis",
    ];
    EXACT.contains(&name) || SUFFIX.iter().any(|s| name.ends_with(s))
}

/// Bare `-` / `-=` with a time-like operand, or `.duration_since(`.
fn saturating_deadlines(a: &Analysis, emit: &mut impl FnMut(Rule, u32, String)) {
    let code = &a.code;
    for k in 0..code.len() {
        let t = &code[k];
        if t.is_ident("duration_since")
            && k > 0
            && code[k - 1].is_punct(".")
            && tok_at(code, k + 1).is_some_and(|n| n.is_punct("("))
        {
            emit(
                Rule::SaturatingDeadlines,
                t.line,
                "`duration_since` panics/errors on clock reversal; use \
                 `saturating_duration_since`"
                    .into(),
            );
            continue;
        }
        if t.kind != TokKind::Punct || (t.text != "-" && t.text != "-=") {
            continue;
        }
        if t.text == "-" {
            // Binary minus only: unary negation has no operand before
            // it, so the previous token must end one.
            let Some(prev) = k.checked_sub(1).map(|p| &code[p]) else {
                continue;
            };
            let binary = matches!(prev.kind, TokKind::Ident | TokKind::Number)
                || prev.is_punct(")")
                || prev.is_punct("]");
            if !binary {
                continue;
            }
        }
        let left = left_operand_name(code, k);
        let right = right_operand_name(code, k);
        let hit = left.as_deref().is_some_and(time_like) || right.as_deref().is_some_and(time_like);
        if hit {
            emit(
                Rule::SaturatingDeadlines,
                t.line,
                format!(
                    "bare `{}` on time-like operand{} underflows when the deadline has passed; \
                     use `saturating_sub`/`checked_sub`",
                    t.text,
                    match (&left, &right) {
                        (Some(l), _) if time_like(l) => format!(" `{l}`"),
                        (_, Some(r)) => format!(" `{r}`"),
                        _ => String::new(),
                    }
                ),
            );
        }
    }
}

/// Name of the operand ending just before the `-` at `code[k]`: an
/// identifier, or — through a closing `)` — the called method's name
/// (`x.elapsed() - y` → `elapsed`, `v.len() - 1` → `len`).
fn left_operand_name(code: &[Tok], k: usize) -> Option<String> {
    let prev = &code[k.checked_sub(1)?];
    if prev.kind == TokKind::Ident {
        return Some(prev.text.clone());
    }
    if prev.is_punct(")") {
        let mut depth = 0i32;
        let mut m = k - 1;
        loop {
            if code[m].is_punct(")") {
                depth += 1;
            } else if code[m].is_punct("(") {
                depth -= 1;
                if depth == 0 {
                    let before = &code[m.checked_sub(1)?];
                    if before.kind == TokKind::Ident {
                        return Some(before.text.clone());
                    }
                    return None;
                }
            }
            m = m.checked_sub(1)?;
        }
    }
    None
}

/// Name of the operand starting just after the `-` at `code[k]`:
/// `foo`, `self.foo` → `foo`, `Instant::now()` → `Instant`.
fn right_operand_name(code: &[Tok], k: usize) -> Option<String> {
    let next = tok_at(code, k + 1)?;
    if next.kind != TokKind::Ident {
        return None;
    }
    if next.text == "self"
        && tok_at(code, k + 2).is_some_and(|t| t.is_punct("."))
        && tok_at(code, k + 3).is_some_and(|t| t.kind == TokKind::Ident)
    {
        return Some(code[k + 3].text.clone());
    }
    Some(next.text.clone())
}

// ---------------------------------------------------------------- rule 3

/// `mpsc::channel` anywhere (call or `use` path), plus the bare ident
/// `channel` inside a `use` statement that mentions `mpsc` (catching
/// `use std::sync::mpsc::{channel, ...}` and therefore any later
/// unqualified `channel()` call).
fn bounded_channels(a: &Analysis, emit: &mut impl FnMut(Rule, u32, String)) {
    let code = &a.code;
    const MSG: &str = "unbounded `mpsc::channel` hides backpressure; use `sync_channel` with an \
                       explicit depth";
    for k in 0..code.len() {
        if code[k].is_ident("mpsc")
            && tok_at(code, k + 1).is_some_and(|t| t.is_punct("::"))
            && tok_at(code, k + 2).is_some_and(|t| t.is_ident("channel"))
        {
            emit(Rule::BoundedChannels, code[k + 2].line, MSG.into());
        }
    }
    let mut k = 0usize;
    while k < code.len() {
        if !code[k].is_ident("use") {
            k += 1;
            continue;
        }
        let start = k;
        let mut end = k;
        while end < code.len() && !code[end].is_punct(";") {
            end += 1;
        }
        let stmt = &code[start..end];
        if stmt.iter().any(|t| t.is_ident("mpsc")) {
            // `use std::sync::mpsc::channel;` is also caught by the
            // qualified scan above; identical findings dedup downstream.
            for t in stmt {
                if t.is_ident("channel") {
                    emit(Rule::BoundedChannels, t.line, MSG.into());
                }
            }
        }
        k = end + 1;
    }
}

// ---------------------------------------------------------------- rule 4

/// Every `unsafe` block / fn / impl / trait needs a `SAFETY:` comment
/// (or, for fns, a `# Safety` doc section) adjacent to it: on the same
/// line, the first line inside the block, or in the run of comments and
/// attributes immediately above.
fn safety_comments(a: &Analysis, emit: &mut impl FnMut(Rule, u32, String)) {
    let code = &a.code;
    for k in 0..code.len() {
        if !code[k].is_ident("unsafe") {
            continue;
        }
        // `unsafe fn(...)` with `(` right after `fn` is a fn-pointer
        // *type*, not a definition — nothing to justify at this site.
        if tok_at(code, k + 1).is_some_and(|t| t.is_ident("fn"))
            && tok_at(code, k + 2).is_some_and(|t| t.is_punct("("))
        {
            continue;
        }
        let line = code[k].line;
        if has_safety_context(a, line) {
            continue;
        }
        let what = tok_at(code, k + 1).map_or("block", |t| match t.text.as_str() {
            "fn" => "fn",
            "impl" => "impl",
            "trait" => "trait",
            _ => "block",
        });
        emit(
            Rule::SafetyComments,
            line,
            format!(
                "`unsafe` {what} without an adjacent `// SAFETY:` justification (or `# Safety` \
                 doc section)"
            ),
        );
    }
}

fn has_safety_context(a: &Analysis, line: u32) -> bool {
    let marks = |s: &str| s.contains("SAFETY:") || s.contains("# Safety");
    if marks(a.line_text(line)) || marks(a.line_text(line + 1)) {
        return true;
    }
    // Scan up through the contiguous run of comments and attributes.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let t = a.line_text(l).trim();
        if t.starts_with("//") {
            if marks(t) {
                return true;
            }
        } else if !(t.starts_with("#[") || t.starts_with("#!") || t.starts_with(")]")) {
            break;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------- rule 5

/// `.unwrap(` / `.expect(` / `panic!` in hot-path files.
fn no_unwrap_hot_path(a: &Analysis, emit: &mut impl FnMut(Rule, u32, String)) {
    let code = &a.code;
    for k in 0..code.len() {
        let t = &code[k];
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && k > 0
            && code[k - 1].is_punct(".")
            && tok_at(code, k + 1).is_some_and(|n| n.is_punct("("))
        {
            emit(
                Rule::NoUnwrapHotPath,
                t.line,
                format!(
                    "`.{}()` can take down a hub thread on a routine edge; propagate the error \
                     or quarantine the shard",
                    t.text
                ),
            );
        }
        if t.is_ident("panic") && tok_at(code, k + 1).is_some_and(|n| n.is_punct("!")) {
            emit(
                Rule::NoUnwrapHotPath,
                t.line,
                "`panic!` in a hot path; return an error or quarantine the shard".into(),
            );
        }
    }
}
