//! `mosh-lint` — workspace invariant linter.
//!
//! `clippy -D warnings` audits general Rust hygiene; this pass audits
//! the *project* invariants that reviews of PRs 5–6 kept re-deriving by
//! hand, encoded as named rules over a hand-rolled token stream (the
//! workspace is vendored-only, so no `syn`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-wallclock-in-sim` | `Instant::now` / `SystemTime::now` / `thread::sleep` only in the real-UDP substrates (`UdpChannel`, `UdpPoller`), bench, or test code — everything else must take time as a parameter so replays are schedule-identical |
//! | `saturating-deadlines` | no bare `-` / `-=` / `duration_since` on time-like operands in `crates/net` or `crates/core/src/hub` — deadline math uses `saturating_*` / `checked_*` (the PR 6 underflow class) |
//! | `bounded-channels` | no unbounded `mpsc::channel()` in `crates/net` / `crates/core` — queues between threads are `sync_channel` with an explicit depth (the PR 5 review class) |
//! | `safety-comments` | every `unsafe` block, fn, or impl carries a `// SAFETY:` justification (or a `# Safety` doc section) |
//! | `no-unwrap-hot-path` | no `unwrap` / `expect` / `panic!` in non-test code of `hub/`, `net/src/feed.rs`, `net/src/channel.rs` — a hub pump must not be able to take down its thread on a routine edge |
//!
//! Suppress a deliberate violation on its own line (or the line above)
//! with a reason:
//!
//! ```text
//! // mosh-lint: allow(no-wallclock-in-sim): pump budget is wall time on the real socket thread
//! ```
//!
//! A suppression without a reason is itself a finding. Test code
//! (`#[cfg(test)]` modules, `#[test]` fns, `tests/`, `examples/`,
//! `benches/`, `crates/bench/`) is exempt from every rule except
//! `safety-comments`; `vendor/` is not scanned at all (third-party API
//! shims — criterion's shim is wall-clock by design).
//!
//! Runs as both a binary (`cargo run -p mosh-lint`, machine-readable
//! `file:line: [rule] message` findings, exit 1 on any) and as the
//! workspace self-check test in `crates/lint/tests/rules.rs`, so tier-1
//! catches regressions without a separate CI wiring.

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Tok, TokKind};
pub use rules::Rule;

/// One lint violation, anchored to a repo-relative path and 1-based
/// line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// A whole-tree run: how many files were scanned and what survived
/// suppression.
#[derive(Debug)]
pub struct Report {
    pub files: usize,
    pub findings: Vec<Finding>,
}

/// One file's lexed form, split into code and comment streams, with
/// test regions resolved so rules can skip them.
pub struct Analysis {
    pub path: String,
    lines: Vec<String>,
    pub code: Vec<Tok>,
    pub comments: Vec<Tok>,
    test_ranges: Vec<(u32, u32)>,
}

impl Analysis {
    pub fn new(path: &str, src: &str) -> Self {
        let toks = lexer::lex(src);
        let (mut code, mut comments) = (Vec::new(), Vec::new());
        for t in toks {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => comments.push(t),
                _ => code.push(t),
            }
        }
        let test_ranges = test_ranges(&code);
        Analysis {
            path: path.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            code,
            comments,
            test_ranges,
        }
    }

    /// Is this 1-based line inside a `#[cfg(test)]` / `#[test]` item?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Raw text of a 1-based line ("" when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", String::as_str)
    }
}

/// Find line ranges covered by test-gated items: an attribute group
/// containing the bare ident `test` (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`) marks the following item through its
/// closing brace (or `;`). Attributes that also contain `not` (as in
/// `#[cfg(not(test))]`) gate *non*-test code and are skipped.
fn test_ranges(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if !code[k].is_punct("#") {
            k += 1;
            continue;
        }
        let start_line = code[k].line;
        let mut j = k + 1;
        if j < code.len() && code[j].is_punct("!") {
            j += 1;
        }
        if j >= code.len() || !code[j].is_punct("[") {
            k += 1;
            continue;
        }
        let (end, has_test, has_not) = scan_attr(code, j);
        k = end + 1;
        if !has_test || has_not {
            continue;
        }
        // Skip any further attributes stacked on the same item.
        while k < code.len() && code[k].is_punct("#") {
            let mut a = k + 1;
            if a < code.len() && code[a].is_punct("!") {
                a += 1;
            }
            if a < code.len() && code[a].is_punct("[") {
                let (end, _, _) = scan_attr(code, a);
                k = end + 1;
            } else {
                break;
            }
        }
        // The item body runs to the matching `}` of its first brace, or
        // to `;` for braceless items (`#[cfg(test)] use ...;`).
        while k < code.len() {
            if code[k].is_punct(";") {
                out.push((start_line, code[k].line));
                k += 1;
                break;
            }
            if code[k].is_punct("{") {
                let mut depth = 0i32;
                while k < code.len() {
                    if code[k].is_punct("{") {
                        depth += 1;
                    } else if code[k].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            out.push((start_line, code[k].line));
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
                break;
            }
            k += 1;
        }
    }
    out
}

/// Scan an attribute group starting at its `[`; return (index of the
/// matching `]`, saw bare ident `test`, saw bare ident `not`).
fn scan_attr(code: &[Tok], open: usize) -> (usize, bool, bool) {
    let mut depth = 0i32;
    let (mut has_test, mut has_not) = (false, false);
    let mut m = open;
    while m < code.len() {
        if code[m].is_punct("[") {
            depth += 1;
        } else if code[m].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (m, has_test, has_not);
            }
        } else if code[m].is_ident("test") {
            has_test = true;
        } else if code[m].is_ident("not") {
            has_not = true;
        }
        m += 1;
    }
    (m.saturating_sub(1), has_test, has_not)
}

/// A parsed allow directive: `allow(<rule>): <reason>` after the tool
/// prefix.
struct Suppression {
    line: u32,
    rule: Rule,
}

/// Extract suppressions from a file's comments. Malformed directives
/// (bad syntax, unknown rule, missing reason) become findings — a
/// suppression is an auditable artifact, not an escape hatch.
fn parse_suppressions(a: &Analysis) -> (Vec<Suppression>, Vec<Finding>) {
    let mut supps = Vec::new();
    let mut bad = Vec::new();
    for c in &a.comments {
        let Some(pos) = c.text.find("mosh-lint:") else {
            continue;
        };
        let mut flag = |message: String| {
            bad.push(Finding {
                path: a.path.clone(),
                line: c.line,
                rule: Rule::Suppression,
                message,
            });
        };
        let rest = c.text[pos + "mosh-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            flag("malformed directive; expected `mosh-lint: allow(<rule>): <reason>`".into());
            continue;
        };
        let Some(close) = rest.find(')') else {
            flag("unclosed `allow(`; expected `mosh-lint: allow(<rule>): <reason>`".into());
            continue;
        };
        let name = rest[..close].trim();
        let Some(rule) = Rule::from_name(name) else {
            flag(format!(
                "unknown rule `{name}`; known rules: {}",
                Rule::SUPPRESSABLE
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        };
        let reason = rest[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            flag(format!(
                "suppression of `{name}` needs a reason: `mosh-lint: allow({name}): <why>`"
            ));
        }
        // The suppression still masks its target even when the reason
        // is missing — the Suppression finding above keeps the run red,
        // and reporting both lines would be noise.
        supps.push(Suppression { line: c.line, rule });
    }
    (supps, bad)
}

/// Lint one file's source. `path` is repo-relative with `/` separators
/// and drives rule scoping, so fixtures can impersonate any location.
pub fn check_source(path: &str, src: &str) -> Vec<Finding> {
    let a = Analysis::new(path, src);
    let mut findings = Vec::new();
    rules::check_all(&a, &mut findings);
    let (supps, bad) = parse_suppressions(&a);
    findings.retain(|f| {
        !supps
            .iter()
            .any(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line))
    });
    findings.extend(bad);
    let set: BTreeSet<Finding> = findings.into_iter().collect();
    set.into_iter().collect()
}

/// Walk the workspace at `root` and lint every first-party `.rs` file:
/// `src/`, `crates/`, `tests/`, `examples/`. `vendor/` and build output
/// are not scanned.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(f)?;
        findings.extend(check_source(&rel, &src));
    }
    findings.sort();
    Ok(Report {
        files: files.len(),
        findings,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != "vendor" {
                collect_rs(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
