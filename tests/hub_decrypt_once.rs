//! The decrypt-once acceptance bar: an ambiguous-address datagram through
//! the hub demux crosses AES-OCB **exactly once** — the authenticating
//! routing probe *is* the delivery decrypt — while per-session behavior
//! stays byte-identical to dedicated `SessionLoop`s.
//!
//! Two full Mosh sessions share one emulated world and one server receive
//! address (the shape of hundreds of sessions behind one UDP socket), so
//! every client→server datagram is ambiguous by address and must be
//! routed by cryptographic authentication. Before the decrypt-once
//! pipeline, each such datagram cost two OCB passes (a verification
//! decrypt whose plaintext was thrown away, then the delivery decrypt);
//! the per-endpoint `decrypt_count` instrumentation proves it now costs
//! one. Adversarial injections at the end pin the hub's dropped-counter
//! on wires that authenticate to no session.

use mosh::core::{
    Endpoint, HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionEvent,
    SessionId, SessionLoop, ShardedHub,
};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Poller, Side, SimChannel, SimPoller};
use mosh::prediction::DisplayPreference;
use mosh::ssp::datagram::Opened;

/// One wire-level action: (virtual time, 's'end or 'r'eceive, peer, bytes).
type Transcript = Vec<(u64, u8, Addr, Vec<u8>)>;

/// Records raw wire traffic around an endpoint. Receives that arrive as
/// already-opened tokens (the ambiguous-address path) are not logged —
/// identity for those endpoints is asserted over their *send* transcript,
/// which pins their entire observable schedule.
struct Recorder<E> {
    inner: E,
    log: Transcript,
}

impl<E> Recorder<E> {
    fn new(inner: E) -> Self {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }

    fn sends(&self) -> Transcript {
        self.log
            .iter()
            .filter(|(_, kind, _, _)| *kind == b's')
            .cloned()
            .collect()
    }
}

impl<E: Endpoint> Endpoint for Recorder<E> {
    fn receive(&mut self, now: u64, from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>) {
        self.log.push((now, b'r', from, wire.to_vec()));
        self.inner.receive(now, from, wire, events);
    }

    fn tick(&mut self, now: u64, out: &mut Vec<(Addr, Vec<u8>)>, events: &mut Vec<SessionEvent>) {
        let start = out.len();
        self.inner.tick(now, out, events);
        for (to, wire) in &out[start..] {
            self.log.push((now, b's', *to, wire.clone()));
        }
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        self.inner.next_wakeup(now)
    }

    fn last_heard(&self) -> Option<u64> {
        self.inner.last_heard()
    }

    fn authenticates(&self, wire: &[u8]) -> bool {
        self.inner.authenticates(wire)
    }

    fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        self.inner.try_open(wire)
    }

    fn receive_opened(
        &mut self,
        now: u64,
        from: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        self.inner.receive_opened(now, from, opened, events);
    }
}

/// Client addresses are distinct; the server address is shared — every
/// inbound server-side datagram is ambiguous.
const CLIENTS: [Addr; 2] = [Addr::new(1, 1000), Addr::new(3, 3000)];
const S: Addr = Addr::new(2, 60001);
const END: u64 = 9000;

fn key(i: usize) -> Base64Key {
    Base64Key::from_bytes([0x40 + i as u8; 16])
}

fn endpoints(i: usize) -> (MoshClient, MoshServer) {
    (
        MoshClient::new(key(i), S, 80, 24, DisplayPreference::Never),
        MoshServer::new(key(i), Box::new(LineShell::new())),
    )
}

/// Per-session keystroke script, staggered so the sessions interleave.
fn script(i: usize) -> Vec<(u64, u8)> {
    vec![
        (500 + 37 * i as u64, b'a' + i as u8),
        (1100 + 53 * i as u64, b'z' - i as u8),
    ]
}

/// The dedicated-loop reference: session `i` alone in its own world (lan
/// links consume no randomness, so per-datagram delivery is independent
/// of any neighbor — the solo schedule IS the shared-world schedule).
fn dedicated_run(i: usize) -> (Transcript, Transcript, String) {
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 99);
    net.register(CLIENTS[i], Side::Client);
    net.register(S, Side::Server);
    let (client, server) = endpoints(i);
    let mut client = Recorder::new(client);
    let mut server = Recorder::new(server);
    let mut sl = SessionLoop::new(SimChannel::new(net));

    for (at, byte) in script(i) {
        sl.pump_until(
            &mut [
                Party::new(CLIENTS[i], &mut client),
                Party::new(S, &mut server),
            ],
            at,
        );
        client.inner.keystroke(at, &[byte]);
    }
    sl.pump_until(
        &mut [
            Party::new(CLIENTS[i], &mut client),
            Party::new(S, &mut server),
        ],
        END,
    );
    let screen = client.inner.server_frame().to_text();
    (client.log, server.sends(), screen)
}

#[test]
fn ambiguous_datagrams_are_decrypted_exactly_once_and_transcripts_match() {
    // --- The hub run: both sessions behind ONE world and ONE server
    // address, sharing a single poller source token.
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 99);
    net.register(CLIENTS[0], Side::Client);
    net.register(CLIENTS[1], Side::Client);
    net.register(S, Side::Server);
    let mut hub = ServerHub::new(SimPoller::new());
    let tok = hub.poller_mut().add(SimChannel::new(net));
    let sids: Vec<SessionId> = (0..2).map(|_| hub.add_session(tok)).collect();

    let mut recs: Vec<(Recorder<MoshClient>, Recorder<MoshServer>)> = (0..2)
        .map(|i| {
            let (c, s) = endpoints(i);
            (Recorder::new(c), Recorder::new(s))
        })
        .collect();

    let pump_all = |hub: &mut ServerHub<SimPoller>,
                    recs: &mut Vec<(Recorder<MoshClient>, Recorder<MoshServer>)>,
                    target: u64| {
        let mut leases: Vec<[Party<'_>; 2]> = recs
            .iter_mut()
            .enumerate()
            .map(|(i, (c, s))| [Party::new(CLIENTS[i], c), Party::new(S, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump(&mut sessions);
    };

    // Interleave both sessions' keystroke instants into one pump plan.
    let mut instants: Vec<(u64, usize, u8)> = Vec::new();
    for i in 0..2 {
        for (at, byte) in script(i) {
            instants.push((at, i, byte));
        }
    }
    instants.sort();
    for (at, i, byte) in instants {
        pump_all(&mut hub, &mut recs, at);
        recs[i].0.inner.keystroke(at, &[byte]);
    }
    pump_all(&mut hub, &mut recs, END);

    // --- Both sessions behaved: each echoed exactly its own keystrokes.
    for (i, (client, server)) in recs.iter().enumerate() {
        let expected = format!("$ {}{}", (b'a' + i as u8) as char, (b'z' - i as u8) as char);
        assert_eq!(
            client.inner.server_frame().row_text(0),
            expected,
            "session {i} echo"
        );
        assert_eq!(
            server.inner.transport_stats().datagrams_rejected,
            0,
            "auth demux never fed session {i} a foreign datagram"
        );
    }
    let stats = hub.stats();
    assert_eq!(stats.dropped, 0, "no legitimate datagram was dropped");
    assert!(
        stats.auth_routed > 0,
        "the shared server address forced authentication routing"
    );

    // --- THE decrypt-once bar. Every server-side datagram was ambiguous
    // and auth-routed; the winner's routing probe is the only OCB pass it
    // ever gets. The single extra decrypt is the one cold-hint miss (the
    // first datagram from the second client is probed against session 0
    // before session 1 claims it). The old demux paid 2× per delivery.
    let received: u64 = recs
        .iter()
        .map(|(_, s)| s.inner.transport_stats().datagrams_received)
        .sum();
    let decrypts: u64 = recs.iter().map(|(_, s)| s.inner.decrypt_count()).sum();
    assert!(
        received >= 16,
        "enough traffic to prove anything: {received}"
    );
    assert_eq!(
        decrypts,
        received + 1,
        "every ambiguous delivery cost exactly one OCB open \
         (plus the single cold-hint probe miss)"
    );
    // Client side (unique addresses, fast path): also exactly one per
    // accepted datagram.
    for (i, (client, _)) in recs.iter().enumerate() {
        assert_eq!(
            client.inner.decrypt_count(),
            client.inner.transport_stats().datagrams_received,
            "client {i} decrypts once per datagram"
        );
    }

    // --- Byte-identity against dedicated loops: full client transcripts
    // (both directions, raw wires) and full server send transcripts pin
    // the schedule; screens pin the outcome.
    for (i, (client, server)) in recs.iter().enumerate() {
        let (ded_client, ded_server_sends, ded_screen) = dedicated_run(i);
        assert_eq!(
            client.log, ded_client,
            "session {i}: client wire transcript diverged from dedicated loop"
        );
        assert_eq!(
            server.sends(),
            ded_server_sends,
            "session {i}: server send transcript diverged from dedicated loop"
        );
        assert_eq!(client.inner.server_frame().to_text(), ded_screen);
        assert!(
            client.log.len() > 10,
            "session {i} too quiet to prove anything"
        );
    }

    // --- Adversarial injections: wires that authenticate to no session
    // are dropped by the hub (its rejected-counter), not delivered.
    let dropped_before = hub.stats().dropped;
    let delivered_before = hub.stats().delivered;
    let some_client_wire = recs[0]
        .0
        .log
        .iter()
        .find(|(_, kind, _, _)| *kind == b's')
        .map(|(_, _, _, w)| w.clone())
        .expect("client sent something");
    let some_server_wire = recs[0]
        .1
        .log
        .iter()
        .find(|(_, kind, _, _)| *kind == b's')
        .map(|(_, _, _, w)| w.clone())
        .expect("server sent something");
    let mut flipped_tag = some_client_wire.clone();
    *flipped_tag.last_mut().unwrap() ^= 0x01;
    let mut foreign_client = MoshClient::new(
        Base64Key::from_bytes([0xEE; 16]),
        S,
        80,
        24,
        DisplayPreference::Never,
    );
    let foreign = (0..100)
        .find_map(|t| foreign_client.tick(t).into_iter().next().map(|(_, w)| w))
        .expect("foreign hello");
    let injections: [Vec<u8>; 4] = [
        some_client_wire[..12].to_vec(), // truncated
        flipped_tag,                     // tampered tag
        some_server_wire,                // reflected own-direction wire
        foreign,                         // cross-session key confusion
    ];
    let n_injections = injections.len() as u64;
    for bad in injections {
        hub.poller_mut()
            .channel_mut(tok)
            .network_mut()
            .send(CLIENTS[0], S, bad);
    }
    let target = hub.now(sids[0]) + 50;
    pump_all(&mut hub, &mut recs, target);
    let stats = hub.stats();
    assert_eq!(
        stats.dropped,
        dropped_before + n_injections,
        "each adversarial wire hit the hub's rejected-counter"
    );
    assert_eq!(
        stats.delivered - delivered_before,
        {
            let received_now: u64 = recs
                .iter()
                .map(|(_, s)| s.inner.transport_stats().datagrams_received)
                .sum();
            received_now - received
        },
        "no adversarial wire was delivered to any session"
    );
    for (i, (_, server)) in recs.iter().enumerate() {
        assert_eq!(
            server.inner.transport_stats().datagrams_rejected,
            0,
            "failed routing probes never count against session {i}"
        );
    }
}

/// The same bar through the sharded runtime: two sessions sharing one
/// world and one server address are co-located on one shard at accept
/// time (a shared source has exactly one owning thread), a third
/// private-world session rides on another shard, and every ambiguous
/// datagram is still OCB-opened exactly once — with all transcripts
/// byte-identical to dedicated loops.
#[test]
fn sharded_hub_keeps_the_decrypt_once_bar() {
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 99);
    net.register(CLIENTS[0], Side::Client);
    net.register(CLIENTS[1], Side::Client);
    net.register(S, Side::Server);

    let mut hub = ShardedHub::with_shards(3, SimPoller::new);
    let first = hub.add_session(SimChannel::new(net));
    let second = hub.add_session_sharing(first);
    assert_eq!(
        hub.location(first).0,
        hub.location(second).0,
        "a shared world is owned by exactly one shard"
    );
    let sids = [first, second];

    // A third, independent session on its own world keeps another shard
    // genuinely busy during the same pumps.
    let mut extra_net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 7);
    let extra_c = Addr::new(8, 8000);
    extra_net.register(extra_c, Side::Client);
    extra_net.register(S, Side::Server);
    let extra_sid = hub.add_session(SimChannel::new(extra_net));
    assert_ne!(hub.location(extra_sid).0, hub.location(first).0);
    let key = Base64Key::from_bytes([0x99; 16]);
    let mut extra_client = MoshClient::new(key.clone(), S, 80, 24, DisplayPreference::Never);
    let mut extra_server = MoshServer::new(key, Box::new(LineShell::new()));

    let mut recs: Vec<(Recorder<MoshClient>, Recorder<MoshServer>)> = (0..2)
        .map(|i| {
            let (c, s) = endpoints(i);
            (Recorder::new(c), Recorder::new(s))
        })
        .collect();

    let pump_all = |hub: &mut ShardedHub<SimPoller>,
                    recs: &mut Vec<(Recorder<MoshClient>, Recorder<MoshServer>)>,
                    extra: (&mut MoshClient, &mut MoshServer),
                    target: u64| {
        let mut leases: Vec<[Party<'_>; 2]> = recs
            .iter_mut()
            .enumerate()
            .map(|(i, (c, s))| [Party::new(CLIENTS[i], c), Party::new(S, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        let mut extra_parties = [Party::new(extra_c, extra.0), Party::new(S, extra.1)];
        sessions.push(HubSession::new(extra_sid, &mut extra_parties, target));
        hub.pump(&mut sessions);
    };

    let mut instants: Vec<(u64, usize, u8)> = Vec::new();
    for i in 0..2 {
        for (at, byte) in script(i) {
            instants.push((at, i, byte));
        }
    }
    instants.sort();
    for (at, i, byte) in instants {
        pump_all(
            &mut hub,
            &mut recs,
            (&mut extra_client, &mut extra_server),
            at,
        );
        recs[i].0.inner.keystroke(at, &[byte]);
        if i == 0 {
            extra_client.keystroke(at, b"q");
        }
    }
    pump_all(
        &mut hub,
        &mut recs,
        (&mut extra_client, &mut extra_server),
        END,
    );

    // The decrypt-once bar, unchanged by sharding: every server-side
    // datagram of the shared world was ambiguous and auth-routed; the
    // winner's routing probe is its only OCB pass (plus the single
    // cold-hint miss).
    let received: u64 = recs
        .iter()
        .map(|(_, s)| s.inner.transport_stats().datagrams_received)
        .sum();
    let decrypts: u64 = recs.iter().map(|(_, s)| s.inner.decrypt_count()).sum();
    assert!(
        received >= 16,
        "enough traffic to prove anything: {received}"
    );
    assert_eq!(
        decrypts,
        received + 1,
        "sharding must not add OCB passes to the ambiguous path"
    );

    // Byte-identity against dedicated loops survives the shard boundary.
    for (i, (client, server)) in recs.iter().enumerate() {
        let (ded_client, ded_server_sends, ded_screen) = dedicated_run(i);
        assert_eq!(
            client.log, ded_client,
            "session {i}: client transcript diverged under the sharded hub"
        );
        assert_eq!(server.sends(), ded_server_sends);
        assert_eq!(client.inner.server_frame().to_text(), ded_screen);
    }
    // The neighbor shard's session worked too, on the address fast path.
    assert!(extra_client.server_frame().row_text(0).starts_with("$ qq"));
    assert_eq!(
        extra_server.transport_stats().datagrams_rejected
            + extra_client.transport_stats().datagrams_rejected,
        0
    );

    let stats = hub.stats();
    assert_eq!(stats.dropped, 0, "no legitimate datagram was dropped");
    assert!(stats.auth_routed > 0, "the ambiguous path was exercised");
}
