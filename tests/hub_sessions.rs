//! The multi-session runtime at scale: one `ServerHub`, one event loop,
//! many concurrent sessions.
//!
//! * 64 simulated sessions (each in its own emulated network world)
//!   driven through one timer wheel, all reaching their echoes.
//! * Idle cost scales linearly in sessions — a wakeup pops one heap
//!   entry, it never scans the session table, so 64 idle sessions cost
//!   ~64× one idle session and the *active* session's traffic is
//!   untouched by idle neighbors.
//! * 8 real UDP loopback sessions behind ONE server socket, demultiplexed
//!   by source address with the crypto-authentication fallback (every
//!   inbound datagram is ambiguous by receive address here, so this also
//!   exercises the auth path end to end).

use mosh::core::{
    HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionId, SessionLoop,
};
use mosh::crypto::Base64Key;
use mosh::net::{
    Addr, LinkConfig, Network, Poller, Side, SimChannel, SimPoller, UdpChannel, UdpPoller,
};
use mosh::prediction::DisplayPreference;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const C: Addr = Addr::new(1, 1000);
const S: Addr = Addr::new(2, 60001);

fn sim_world(seed: u64) -> SimChannel {
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
    net.register(C, Side::Client);
    net.register(S, Side::Server);
    SimChannel::new(net)
}

fn key(i: usize) -> Base64Key {
    let mut bytes = [0u8; 16];
    bytes[0] = i as u8;
    bytes[1] = 0x5a;
    Base64Key::from_bytes(bytes)
}

struct SimFleet {
    hub: ServerHub<SimPoller>,
    sids: Vec<SessionId>,
    users: Vec<(MoshClient, MoshServer)>,
}

fn sim_fleet(n: usize) -> SimFleet {
    let mut hub = ServerHub::new(SimPoller::new());
    let mut sids = Vec::new();
    let mut users = Vec::new();
    for i in 0..n {
        let tok = hub.poller_mut().add(sim_world(i as u64 + 1));
        sids.push(hub.add_session(tok));
        users.push((
            MoshClient::new(key(i), S, 80, 24, DisplayPreference::Never),
            MoshServer::new(key(i), Box::new(LineShell::new())),
        ));
    }
    SimFleet { hub, sids, users }
}

impl SimFleet {
    fn pump_all(&mut self, target: u64) {
        let mut leases: Vec<[Party<'_>; 2]> = self
            .users
            .iter_mut()
            .map(|(c, s)| [Party::new(C, c), Party::new(S, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(self.sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        self.hub.pump(&mut sessions);
    }
}

#[test]
fn one_hub_serves_64_concurrent_simulated_sessions() {
    let n = 64;
    let mut fleet = sim_fleet(n);
    fleet.pump_all(500);
    for (i, (client, _)) in fleet.users.iter().enumerate() {
        assert_eq!(
            client.server_frame().row_text(0),
            "$",
            "session {i} reached its prompt"
        );
    }

    // Every user types a distinct character at a staggered instant.
    for (i, (client, _)) in fleet.users.iter_mut().enumerate() {
        client.keystroke(500, &[b'a' + (i % 26) as u8]);
    }
    fleet.pump_all(1500);
    for (i, (client, server)) in fleet.users.iter().enumerate() {
        let expected = format!("$ {}", (b'a' + (i % 26) as u8) as char);
        assert_eq!(
            client.server_frame().row_text(0),
            expected,
            "session {i}'s own keystroke echoed"
        );
        assert_eq!(server.target(), Some(C), "session {i} learned its client");
    }
    let stats = fleet.hub.stats();
    assert_eq!(stats.dropped, 0, "no datagram lost in the demux");
    assert_eq!(
        stats.auth_routed, 0,
        "per-world sessions route by address alone — no crypto needed"
    );
    assert!(stats.delivered as usize >= n * 4, "real traffic flowed");
}

#[test]
fn idle_sessions_cost_linearly_never_quadratically() {
    // An idle Mosh session still heartbeats every ~3 s; what must NOT
    // happen is any per-wakeup cost proportional to the number of other
    // (idle) sessions. Wakeups are the unit of work: with a timer wheel,
    // total wakeups for k idle sessions ≈ k × (wakeups of one).
    let horizon = 60_000;
    let mut solo = sim_fleet(1);
    solo.pump_all(horizon);
    let solo_wakeups = solo.hub.stats().wakeups;

    let k = 64;
    let mut fleet = sim_fleet(k);
    fleet.pump_all(horizon);
    let fleet_wakeups = fleet.hub.stats().wakeups;

    assert!(solo_wakeups > 0);
    let per_session = fleet_wakeups as f64 / k as f64;
    assert!(
        per_session <= solo_wakeups as f64 * 1.25,
        "per-session wakeups grew with fleet size: {per_session:.1} vs solo {solo_wakeups} \
         (a scan would make this explode)"
    );
}

/// Eight real Mosh sessions behind ONE UDP server socket, one hub, one
/// event loop — the multi-session loopback smoke test CI runs.
#[test]
fn eight_udp_sessions_behind_one_socket() {
    const N: usize = 8;
    let server_channel = UdpChannel::bind("127.0.0.1:0").expect("server socket");
    let server_addr = server_channel.local_addr();

    let mut hub = ServerHub::new(UdpPoller::new());
    let tok = hub.poller_mut().add(server_channel);
    let mut sids = Vec::new();
    let mut servers: Vec<MoshServer> = Vec::new();
    for i in 0..N {
        sids.push(hub.add_session(tok));
        servers.push(MoshServer::new(key(i), Box::new(LineShell::new())));
    }

    let done = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for i in 0..N {
        let done = done.clone();
        let key = key(i);
        clients.push(std::thread::spawn(move || {
            let channel = UdpChannel::bind("127.0.0.1:0").expect("client socket");
            let addr = channel.local_addr();
            let mut client = MoshClient::new(key, server_addr, 80, 24, DisplayPreference::Never);
            let mut sl = SessionLoop::new(channel);
            let start = std::time::Instant::now();
            let expected = format!("$ {}", (b'a' + i as u8) as char);
            let mut typed = false;
            loop {
                assert!(
                    start.elapsed().as_secs() < 60,
                    "client {i} timed out waiting for {expected:?} \
                     (screen: {:?})",
                    client.server_frame().row_text(0)
                );
                let t = sl.now() + 5;
                sl.pump_until(&mut [Party::new(addr, &mut client)], t);
                let row = client.server_frame().row_text(0);
                if row == "$" && !typed {
                    typed = true;
                    client.keystroke(sl.now(), &[b'a' + i as u8]);
                } else if row == expected {
                    break;
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            (i, client.server_frame().row_text(0))
        }));
    }

    // One event loop serves all eight sessions until every client saw its
    // echo. Every inbound datagram here is ambiguous (all sessions share
    // the receive address), so the demux authenticates each one.
    let start = std::time::Instant::now();
    while done.load(Ordering::SeqCst) < N {
        assert!(start.elapsed().as_secs() < 90, "hub smoke timed out");
        let target = hub.now(sids[0]) + 10;
        let mut leases: Vec<[Party<'_>; 1]> = servers
            .iter_mut()
            .map(|s| [Party::new(server_addr, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump(&mut sessions);
    }

    for c in clients {
        let (i, row) = c.join().expect("client thread");
        assert_eq!(row, format!("$ {}", (b'a' + i as u8) as char));
    }
    // Each session echoed exactly its own client's keystroke — never a
    // neighbor's — and learned that client's real socket address.
    let mut targets = std::collections::HashSet::new();
    for (i, server) in servers.iter().enumerate() {
        let expected = format!("$ {}", (b'a' + i as u8) as char);
        assert_eq!(server.frame().row_text(0), expected, "server {i} screen");
        let target = server.target().expect("server {i} learned a client");
        assert!(targets.insert(target), "distinct client per session");
        assert_eq!(
            server.transport_stats().datagrams_rejected,
            0,
            "auth demux never fed session {i} a foreign datagram"
        );
    }
    let stats = hub.stats();
    assert!(
        stats.auth_routed >= stats.delivered,
        "every shared-socket delivery went through authentication \
         (auth_routed {} vs delivered {})",
        stats.auth_routed,
        stats.delivered
    );
}
