//! The session-lifecycle acceptance bar: a [`ShardedHub`] session is a
//! *value* — it can be checkpointed, moved between shards, shipped to a
//! new process, and resurrected after its shard dies — and none of that
//! is allowed to change what the session's peer observes.
//!
//! * **Live migration** mid-replay is transcript-invisible: a proptest
//!   migrates every session between shards after every step and requires
//!   the full per-session wire transcripts (both directions, raw bytes,
//!   with timestamps) to be byte-identical to the single-threaded hub,
//!   at every shard count.
//! * **Cross-process handoff** is byte-identical: mid-replay, every
//!   session is snapshotted into a handoff file, a *fresh* hub with a
//!   different shard count restores them, and the replay continues with
//!   transcripts equal to the uninterrupted run.
//! * **Crash recovery loses zero checkpointed sessions**: a proptest
//!   kills a shard mid-replay with an injected endpoint panic; every
//!   session on it resurrects from its last checkpoint onto a healthy
//!   shard and converges to the same final screen as the undisturbed
//!   run — the un-checkpointed tail arrives by SSP retransmit, exactly
//!   like a Mosh loss episode.
//! * **Corrupt snapshots are rejected whole**: random truncations and
//!   bit flips never half-apply.

use mosh::core::hub::snapshot;
use mosh::core::{
    Endpoint, HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionEvent,
    SessionId, ShardedHub,
};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Poller, Side, SimChannel, SimPoller};
use mosh::prediction::DisplayPreference;
use mosh::ssp::datagram::Opened;
use proptest::prelude::*;

const S: Addr = Addr::new(2, 60001);

/// One wire-level action: (virtual time, 's'end or 'r'eceive, peer, bytes).
type Transcript = Vec<(u64, u8, Addr, Vec<u8>)>;

/// Records raw wire traffic around an endpoint, forwarding everything —
/// including the snapshot hooks, so the checkpoint cadence sees through
/// the recorder.
struct Recorder<E> {
    inner: E,
    log: Transcript,
}

impl<E> Recorder<E> {
    fn new(inner: E) -> Self {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }
}

impl<E: Endpoint> Endpoint for Recorder<E> {
    fn receive(&mut self, now: u64, from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>) {
        self.log.push((now, b'r', from, wire.to_vec()));
        self.inner.receive(now, from, wire, events);
    }

    fn tick(&mut self, now: u64, out: &mut Vec<(Addr, Vec<u8>)>, events: &mut Vec<SessionEvent>) {
        let start = out.len();
        self.inner.tick(now, out, events);
        for (to, wire) in &out[start..] {
            self.log.push((now, b's', *to, wire.clone()));
        }
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        self.inner.next_wakeup(now)
    }

    fn last_heard(&self) -> Option<u64> {
        self.inner.last_heard()
    }

    fn authenticates(&self, wire: &[u8]) -> bool {
        self.inner.authenticates(wire)
    }

    fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        self.inner.try_open(wire)
    }

    fn receive_opened(
        &mut self,
        now: u64,
        from: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        self.inner.receive_opened(now, from, opened, events);
    }

    fn activity_marker(&self) -> Option<(u64, u64)> {
        self.inner.activity_marker()
    }

    fn checkpoint(&mut self, now: u64) -> Option<Vec<u8>> {
        self.inner.checkpoint(now)
    }
}

fn key(i: usize) -> Base64Key {
    let mut bytes = [0u8; 16];
    bytes[0] = 0x30 + i as u8;
    bytes[1] = 0x5f;
    Base64Key::from_bytes(bytes)
}

fn client_addr(i: usize) -> Addr {
    Addr::new(1, 2000 + i as u16)
}

fn world(i: usize, seed: u64) -> SimChannel {
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
    net.register(client_addr(i), Side::Client);
    net.register(S, Side::Server);
    SimChannel::new(net)
}

fn endpoints(i: usize) -> (Recorder<MoshClient>, Recorder<MoshServer>) {
    (
        Recorder::new(MoshClient::new(key(i), S, 80, 24, DisplayPreference::Never)),
        Recorder::new(MoshServer::new(key(i), Box::new(LineShell::new()))),
    )
}

const STEP_MS: u64 = 137;
const SETTLE_MS: u64 = 8_000;

/// Drives one scripted step (or the final settle) through `pump`.
fn pump_step(
    now: u64,
    sids: &[SessionId],
    recs: &mut [(Recorder<MoshClient>, Recorder<MoshServer>)],
    mut pump: impl FnMut(&mut [HubSession<'_, '_>]),
) {
    let mut leases: Vec<Vec<Party<'_>>> = recs
        .iter_mut()
        .enumerate()
        .map(|(i, (c, s))| vec![Party::new(client_addr(i), c), Party::new(S, s)])
        .collect();
    let mut sessions: Vec<HubSession<'_, '_>> = leases
        .iter_mut()
        .zip(sids.iter())
        .map(|(parties, sid)| HubSession::new(*sid, parties, now))
        .collect();
    pump(&mut sessions);
}

/// The uninterrupted reference: every session in one single-threaded hub.
fn reference_run(texts: &[String], seed: u64) -> Vec<(Transcript, Transcript, String)> {
    let mut hub = ServerHub::new(SimPoller::new());
    let mut recs: Vec<_> = (0..texts.len()).map(endpoints).collect();
    let sids: Vec<SessionId> = (0..texts.len())
        .map(|i| {
            let tok = hub.poller_mut().add(world(i, seed));
            hub.add_session(tok)
        })
        .collect();
    let longest = texts.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut now = 0u64;
    for step in 0..=longest {
        now += STEP_MS;
        pump_step(now, &sids, &mut recs, |s| {
            hub.pump(s);
        });
        for (i, text) in texts.iter().enumerate() {
            if let Some(b) = text.as_bytes().get(step) {
                recs[i].0.inner.keystroke(now, &[*b]);
            }
        }
    }
    now += SETTLE_MS;
    pump_step(now, &sids, &mut recs, |s| {
        hub.pump(s);
    });
    recs.into_iter()
        .map(|(c, s)| {
            let screen = c.inner.server_frame().row_text(0).to_string();
            (c.log, s.log, screen)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Migrating every session to another shard after **every** step of
    /// the replay changes nothing either peer can observe, at any shard
    /// count: full wire transcripts stay byte-identical to the
    /// single-threaded hub that never migrates.
    #[test]
    fn migration_mid_replay_is_transcript_invisible(
        seed in any::<u64>(),
        texts in proptest::collection::vec("[a-z]{1,5}", 2..4),
        shards in 2usize..5,
    ) {
        let reference = reference_run(&texts, seed);

        let mut hub = ShardedHub::with_shards(shards, SimPoller::new);
        let mut recs: Vec<_> = (0..texts.len()).map(endpoints).collect();
        let sids: Vec<SessionId> = (0..texts.len())
            .map(|i| hub.add_session(world(i, seed)))
            .collect();
        let longest = texts.iter().map(|t| t.len()).max().unwrap_or(0);
        let mut now = 0u64;
        let mut migrations = 0u64;
        for step in 0..=longest {
            now += STEP_MS;
            pump_step(now, &sids, &mut recs, |s| {
                hub.pump(s);
            });
            // Every session hops one shard over, every step.
            for sid in &sids {
                let to = (hub.location(*sid).0 + 1) % shards;
                prop_assert!(hub.migrate_session(*sid, to));
                migrations += 1;
            }
            for (i, text) in texts.iter().enumerate() {
                if let Some(b) = text.as_bytes().get(step) {
                    recs[i].0.inner.keystroke(now, &[*b]);
                }
            }
        }
        now += SETTLE_MS;
        pump_step(now, &sids, &mut recs, |s| {
            hub.pump(s);
        });
        prop_assert_eq!(hub.stats().sessions_migrated, migrations);

        for (i, ((c, s), text)) in recs.iter().zip(texts.iter()).enumerate() {
            let (ref_c, ref_s, ref_screen) = &reference[i];
            prop_assert_eq!(&c.log, ref_c, "user {} client transcript diverged", i);
            prop_assert_eq!(&s.log, ref_s, "user {} server transcript diverged", i);
            let screen = c.inner.server_frame().row_text(0).to_string();
            prop_assert_eq!(&screen, ref_screen);
            prop_assert_eq!(screen, format!("$ {text}"));
        }
    }

    /// Random truncations and bit flips of a real session snapshot are
    /// rejected at decode — never half-applied — and the pristine frame
    /// still restores afterwards.
    #[test]
    fn corrupt_snapshots_are_rejected_whole(
        cut_seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        // One busy server, snapshotted once (outside the proptest loop
        // this would be cheaper, but determinism matters more here).
        let mut hub = ServerHub::new(SimPoller::new());
        let tok = hub.poller_mut().add(world(0, 99));
        let sid = hub.add_session(tok);
        let (mut c, mut s) = endpoints(0);
        {
            let mut parties = vec![Party::new(client_addr(0), &mut c), Party::new(S, &mut s)];
            hub.pump(&mut [HubSession::new(sid, &mut parties, 200)]);
        }
        c.inner.keystroke(200, b"q");
        {
            let mut parties = vec![Party::new(client_addr(0), &mut c), Party::new(S, &mut s)];
            hub.pump(&mut [HubSession::new(sid, &mut parties, 500)]);
        }
        let framed = snapshot::snapshot_server(&s.inner);

        let cut = (cut_seed as usize) % framed.len();
        prop_assert!(
            snapshot::restore_server(&framed[..cut], Box::new(LineShell::new())).is_err(),
            "truncation at {} must be rejected", cut
        );
        let mut flipped = framed.clone();
        let bit = (flip_seed as usize) % (framed.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            snapshot::restore_server(&flipped, Box::new(LineShell::new())).is_err(),
            "bit flip at {} must be rejected", bit
        );
        prop_assert!(snapshot::restore_server(&framed, Box::new(LineShell::new())).is_ok());
    }

    /// Kill a shard mid-replay with checkpointing on: **zero sessions
    /// are lost**. Every session of the dead shard resurrects from its
    /// last checkpoint onto a healthy shard, the client retransmits the
    /// un-checkpointed tail, and every session converges to the same
    /// final screen as the undisturbed reference run.
    #[test]
    fn crash_recovery_loses_no_checkpointed_sessions(
        seed in any::<u64>(),
        texts in proptest::collection::vec("[a-z]{2,5}", 2..4),
        shards in 2usize..4,
        crash_step in 1usize..3,
    ) {
        let reference = reference_run(&texts, seed);

        let mut hub = ShardedHub::with_shards(shards, SimPoller::new);
        hub.enable_checkpointing(40);
        let mut recs: Vec<_> = (0..texts.len()).map(endpoints).collect();
        let sids: Vec<SessionId> = (0..texts.len())
            .map(|i| hub.add_session(world(i, seed)))
            .collect();
        let longest = texts.iter().map(|t| t.len()).max().unwrap_or(0);
        let crash_step = crash_step.min(longest);
        let victim_shard = 0usize;

        let mut now = 0u64;
        for step in 0..=longest {
            now += STEP_MS;
            if step == crash_step {
                // A panicking endpoint lands on the victim shard and
                // kills its pump; every session there is stranded.
                let tok = hub.shard_mut(victim_shard).poller_mut().add(world(7, seed ^ 1));
                let doomed = hub.add_session_on(victim_shard, tok);
                let mut bomb = PanicEndpoint;
                {
                    let mut parties = vec![Party::new(client_addr(7), &mut bomb)];
                    let mut lease = [HubSession::new(doomed, &mut parties, now)];
                    hub.pump(&mut lease);
                }
                prop_assert!(hub.shard_error(victim_shard).is_some());

                // Recovery: every one of *our* sessions that lived on the
                // dead shard comes back; its caller rebuilds the server
                // endpoint from the snapshot (the client never died).
                let mut stranded: Vec<SessionId> = sids
                    .iter()
                    .copied()
                    .filter(|sid| hub.location(*sid).0 == victim_shard)
                    .collect();
                let recovered = hub.resurrect_quarantined();
                let mut brought_back: Vec<SessionId> =
                    recovered.iter().map(|(sid, _)| *sid).collect();
                for sid in &brought_back {
                    prop_assert!(hub.location(*sid).0 != victim_shard);
                }
                // Zero loss: exactly the stranded set resurrects (the
                // bomb checkpoints nothing and is the only casualty).
                stranded.sort();
                brought_back.sort();
                prop_assert_eq!(&brought_back, &stranded);
                prop_assert_eq!(
                    hub.stats().sessions_resurrected,
                    brought_back.len() as u64
                );
                prop_assert_eq!(hub.session_count(), texts.len());
                for (sid, framed) in recovered {
                    let i = sids
                        .iter()
                        .position(|s| *s == sid)
                        .expect("recovered id is one of ours");
                    let restored = snapshot::resurrect_server(&framed, Box::new(LineShell::new()))
                        .expect("stored checkpoint decodes");
                    // Keep the transcript log; swap the endpoint.
                    let old = std::mem::replace(&mut recs[i].1, Recorder::new(restored));
                    recs[i].1.log = old.log;
                }
            }
            pump_step(now, &sids, &mut recs, |s| {
                hub.pump(s);
            });
            for (i, text) in texts.iter().enumerate() {
                if let Some(b) = text.as_bytes().get(step) {
                    recs[i].0.inner.keystroke(now, &[*b]);
                }
            }
        }
        now += SETTLE_MS;
        pump_step(now, &sids, &mut recs, |s| {
            hub.pump(s);
        });

        // Convergence: every session — resurrected or bystander — ends
        // on the reference run's final screen. (Wire transcripts differ
        // by the retransmit of the un-checkpointed tail; the *outcome*
        // must not.)
        for (i, ((c, _), text)) in recs.iter().zip(texts.iter()).enumerate() {
            let screen = c.inner.server_frame().row_text(0).to_string();
            prop_assert_eq!(&screen, &reference[i].2, "user {} diverged", i);
            prop_assert_eq!(screen, format!("$ {text}"));
        }
    }
}

/// An endpoint whose first timer tick panics — the injected shard fault.
struct PanicEndpoint;

impl Endpoint for PanicEndpoint {
    fn receive(&mut self, _: u64, _: Addr, _: &[u8], _: &mut Vec<SessionEvent>) {}

    fn tick(&mut self, _: u64, _: &mut Vec<(Addr, Vec<u8>)>, _: &mut Vec<SessionEvent>) {
        panic!("injected endpoint panic");
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        now
    }
}

/// Scrollback and the viewport offset are session state: rows that
/// scrolled off the top, and how far back the host-side viewport is
/// scrolled, ride the snapshot container through restore (handoff),
/// resurrect (crash recovery), and live migration — and the viewport
/// stays anchored on the same content as the session keeps scrolling
/// afterwards.
#[test]
fn scrollback_and_viewport_survive_snapshot_and_migration() {
    let seed = 1717u64;
    let mut hub = ShardedHub::with_shards(2, SimPoller::new);
    let (mut c, mut s) = endpoints(0);
    let sid = hub.add_session(world(0, seed));
    let sids = [sid];
    let mut now = 0u64;

    // Hammer ENTER until the prompt walks off the bottom of the 24-row
    // screen: every evicted row must land in scrollback.
    for _ in 0..32 {
        now += STEP_MS;
        {
            let mut recs = [(c, s)];
            pump_step(now, &sids, &mut recs, |l| {
                hub.pump(l);
            });
            [(c, s)] = recs;
        }
        c.inner.keystroke(now, b"\r");
    }
    now += SETTLE_MS;
    {
        let mut recs = [(c, s)];
        pump_step(now, &sids, &mut recs, |l| {
            hub.pump(l);
        });
        [(c, s)] = recs;
    }
    assert!(
        s.inner.frame().scrollback_len() >= 3,
        "32 prompts on a 24-row screen must scroll"
    );

    // Scroll the host viewport three lines into history and remember
    // exactly what it shows.
    s.inner.scroll_view(3);
    assert_eq!(s.inner.frame().display_offset(), 3);
    let depth = s.inner.frame().scrollback_len();
    let anchored: Vec<mosh::terminal::Row> = (0..3)
        .map(|i| s.inner.frame().view_row(i).clone())
        .collect();

    // Snapshot → restore (clean handoff) and → resurrect (crash
    // recovery): both must bring back the scrollback rows and the
    // viewport offset byte-identically.
    let framed = snapshot::snapshot_server(&s.inner);
    for restored in [
        snapshot::restore_server(&framed, Box::new(LineShell::new())).expect("restores"),
        snapshot::resurrect_server(&framed, Box::new(LineShell::new())).expect("resurrects"),
    ] {
        assert_eq!(restored.frame().scrollback_len(), depth);
        assert_eq!(restored.frame().display_offset(), 3);
        for (i, row) in anchored.iter().enumerate() {
            assert_eq!(restored.frame().view_row(i), row, "view row {i} diverged");
        }
        assert_eq!(restored.frame(), s.inner.frame());
    }

    // Swap in the restored server (handoff style), migrate the session
    // to the other shard, and keep typing: the session must keep
    // converging, new evictions must keep feeding scrollback, and the
    // scrolled-back viewport must stay anchored on the same rows.
    let restored = snapshot::restore_server(&framed, Box::new(LineShell::new())).expect("restores");
    let old = std::mem::replace(&mut s, Recorder::new(restored));
    s.log = old.log;
    let to = (hub.location(sid).0 + 1) % 2;
    assert!(hub.migrate_session(sid, to));
    for _ in 0..6 {
        now += STEP_MS;
        {
            let mut recs = [(c, s)];
            pump_step(now, &sids, &mut recs, |l| {
                hub.pump(l);
            });
            [(c, s)] = recs;
        }
        c.inner.keystroke(now, b"\r");
    }
    now += SETTLE_MS;
    {
        let mut recs = [(c, s)];
        pump_step(now, &sids, &mut recs, |l| {
            hub.pump(l);
        });
        [(c, s)] = recs;
    }

    assert_eq!(
        c.inner.server_frame().row_text(23),
        "$",
        "session converges"
    );
    assert!(
        s.inner.frame().scrollback_len() > depth,
        "post-restore scrolls keep feeding scrollback"
    );
    assert_eq!(
        s.inner.frame().display_offset(),
        3 + (s.inner.frame().scrollback_len() - depth),
        "viewport anchors across new evictions"
    );
    for (i, row) in anchored.iter().enumerate() {
        assert_eq!(
            s.inner.frame().view_row(i),
            row,
            "anchored view row {i} drifted after migration"
        );
    }
}

/// Mid-replay, snapshot every session into a handoff container, restart
/// into a **fresh hub with a different shard count**, restore, and
/// finish the replay: transcripts are byte-identical to never having
/// restarted. The rolling-restart path, end to end, file included.
#[test]
fn cross_process_handoff_is_byte_identical() {
    let texts: Vec<String> = ["hand", "off", "fest"].map(String::from).to_vec();
    let seed = 4242u64;
    let reference = reference_run(&texts, seed);

    let mut recs: Vec<_> = (0..texts.len()).map(endpoints).collect();
    let longest = texts.iter().map(|t| t.len()).max().unwrap_or(0);
    let handoff_step = 2usize;
    let mut now = 0u64;

    // Phase 1: the old process — a two-shard hub.
    let mut old_hub = ShardedHub::with_shards(2, SimPoller::new);
    let sids: Vec<SessionId> = (0..texts.len())
        .map(|i| old_hub.add_session(world(i, seed)))
        .collect();
    for step in 0..handoff_step {
        now += STEP_MS;
        pump_step(now, &sids, &mut recs, |s| {
            old_hub.pump(s);
        });
        for (i, text) in texts.iter().enumerate() {
            if let Some(b) = text.as_bytes().get(step) {
                recs[i].0.inner.keystroke(now, &[*b]);
            }
        }
    }

    // The handoff: snapshot every server verbatim (no ack capping — the
    // old process is shutting down cleanly, not crashing), ship the
    // container through an actual file, and pull the live channels out
    // of the old pollers (the fd-passing half of a real rolling restart).
    let entries: Vec<(usize, Vec<u8>)> = sids
        .iter()
        .zip(recs.iter())
        .map(|(sid, (_, s))| (sid.0, snapshot::snapshot_server(&s.inner)))
        .collect();
    let path = std::env::temp_dir().join("mosh-lifecycle-handoff.bin");
    snapshot::write_handoff(&path, &entries).expect("handoff written");
    let restored_entries = snapshot::read_handoff(&path)
        .expect("handoff read")
        .expect("handoff decodes");
    let _ = std::fs::remove_file(&path);
    assert_eq!(restored_entries, entries);

    let channels: Vec<SimChannel> = sids
        .iter()
        .map(|sid| {
            let (shard, local) = old_hub.location(*sid);
            let tok = old_hub.shard(shard).token_of(local);
            old_hub
                .shard_mut(shard)
                .poller_mut()
                .extract(tok)
                .expect("channel leaves the old process")
        })
        .collect();
    drop(old_hub);

    // Phase 2: the new process — three shards now — restores each
    // session from the container and keeps replaying.
    let mut new_hub = ShardedHub::with_shards(3, SimPoller::new);
    let new_sids: Vec<SessionId> = channels
        .into_iter()
        .map(|ch| new_hub.add_session(ch))
        .collect();
    for (i, (gid, framed)) in restored_entries.iter().enumerate() {
        assert_eq!(*gid, sids[i].0, "container preserves session order");
        let restored = snapshot::restore_server(framed, Box::new(LineShell::new()))
            .expect("handoff snapshot decodes");
        let old = std::mem::replace(&mut recs[i].1, Recorder::new(restored));
        recs[i].1.log = old.log;
    }
    for step in handoff_step..=longest {
        now += STEP_MS;
        pump_step(now, &new_sids, &mut recs, |s| {
            new_hub.pump(s);
        });
        for (i, text) in texts.iter().enumerate() {
            if let Some(b) = text.as_bytes().get(step) {
                recs[i].0.inner.keystroke(now, &[*b]);
            }
        }
    }
    now += SETTLE_MS;
    pump_step(now, &new_sids, &mut recs, |s| {
        new_hub.pump(s);
    });

    for (i, ((c, s), text)) in recs.iter().zip(texts.iter()).enumerate() {
        let (ref_c, ref_s, ref_screen) = &reference[i];
        assert_eq!(&c.log, ref_c, "user {i} client transcript diverged");
        assert_eq!(&s.log, ref_s, "user {i} server transcript diverged");
        let screen = c.inner.server_frame().row_text(0).to_string();
        assert_eq!(&screen, ref_screen);
        assert_eq!(screen, format!("$ {text}"));
    }
}
