//! End-to-end property tests: whole-session invariants under randomized
//! networks and inputs.

use mosh::core::{LineShell, MoshClient, MoshServer};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side};
use mosh::prediction::DisplayPreference;
use proptest::prelude::*;

fn drive(
    net: &mut Network,
    client: &mut MoshClient,
    server: &mut MoshServer,
    c: Addr,
    s: Addr,
    now: &mut u64,
    until: u64,
) {
    while *now < until {
        for (to, w) in client.tick(*now) {
            net.send(c, to, w);
        }
        for (to, w) in server.tick(*now) {
            net.send(s, to, w);
        }
        *now += 1;
        net.advance_to(*now);
        while let Some(dg) = net.recv(s) {
            server.receive(*now, dg.from, &dg.payload);
        }
        while let Some(dg) = net.recv(c) {
            client.receive(*now, &dg.payload);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of printable keystrokes over any moderately lossy link
    /// converges: the client's display eventually equals the server's
    /// authoritative screen, and the shell received the full line.
    #[test]
    fn session_converges_under_random_loss_and_typing(
        seed in any::<u64>(),
        loss in 0.0f64..0.35,
        delay in 5u64..300,
        text in "[a-z ]{1,24}",
    ) {
        let link = LinkConfig { loss, delay_ms: delay, ..LinkConfig::lan() };
        let key_bytes: [u8; 16] = seed
            .to_le_bytes()
            .repeat(2)
            .try_into()
            .expect("16 bytes");
        let key = Base64Key::from_bytes(key_bytes);
        let mut net = Network::new(link.clone(), link, seed);
        let c = Addr::new(1, 1000);
        let s = Addr::new(2, 60001);
        net.register(c, Side::Client);
        net.register(s, Side::Server);
        let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
        let mut server = MoshServer::new(key, Box::new(LineShell::new()));
        let mut now = 0u64;

        drive(&mut net, &mut client, &mut server, c, s, &mut now, 3000);
        for ch in text.bytes() {
            client.keystroke(now, &[ch]);
            let until = now + 120;
            drive(&mut net, &mut client, &mut server, c, s, &mut now, until);
        }
        // Quiescence: generous for the lossiest cases (RTO <= 1 s).
        let until = now + 30_000;
        drive(&mut net, &mut client, &mut server, c, s, &mut now, until);

        // The server's line buffer saw every keystroke, in order.
        let expected = format!("$ {}", text);
        prop_assert_eq!(
            server.frame().row_text(0),
            expected.trim_end(),
            "server echoed the full input"
        );
        // The client converged to the authoritative screen, and any
        // leftover prediction overlays agree with it.
        prop_assert_eq!(client.server_frame(), server.frame());
        prop_assert_eq!(&client.display(), server.frame());
    }

    /// Roaming through an arbitrary sequence of addresses never loses
    /// keystrokes or reorders them.
    #[test]
    fn roaming_preserves_input_ordering(
        seed in any::<u64>(),
        hops in proptest::collection::vec(3u32..200, 1..5),
    ) {
        let key = Base64Key::from_bytes([9u8; 16]);
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        let s = Addr::new(2, 60001);
        let mut c = Addr::new(1, 1000);
        net.register(c, Side::Client);
        net.register(s, Side::Server);
        let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Never);
        let mut server = MoshServer::new(key, Box::new(LineShell::new()));
        let mut now = 0u64;
        drive(&mut net, &mut client, &mut server, c, s, &mut now, 1000);

        let mut expected = String::from("$ ");
        for (i, hop) in hops.iter().enumerate() {
            // Roam to a new address, then type one letter.
            c = Addr::new(*hop, 1000 + i as u16);
            net.register(c, Side::Client);
            let letter = b'a' + (i as u8 % 26);
            client.keystroke(now, &[letter]);
            expected.push(letter as char);
            let until = now + 800;
            drive(&mut net, &mut client, &mut server, c, s, &mut now, until);
        }
        let until = now + 3000;
        drive(&mut net, &mut client, &mut server, c, s, &mut now, until);
        prop_assert_eq!(server.frame().row_text(0), expected.trim_end());
        prop_assert_eq!(server.target(), Some(c), "server follows the last hop");
    }
}
