//! End-to-end property tests: whole-session invariants under randomized
//! networks and inputs, driven by the event-driven `SessionLoop`.

use mosh::core::{LineShell, MoshClient, MoshServer, Party, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side, SimChannel};
use mosh::prediction::DisplayPreference;
use proptest::prelude::*;

fn drive(
    sl: &mut SessionLoop<SimChannel>,
    client: &mut MoshClient,
    server: &mut MoshServer,
    c: Addr,
    s: Addr,
    until: u64,
) {
    sl.pump_until(&mut [Party::new(c, client), Party::new(s, server)], until);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of printable keystrokes over any moderately lossy link
    /// converges: the client's display eventually equals the server's
    /// authoritative screen, and the shell received the full line.
    #[test]
    fn session_converges_under_random_loss_and_typing(
        seed in any::<u64>(),
        loss in 0.0f64..0.35,
        delay in 5u64..300,
        text in "[a-z ]{1,24}",
    ) {
        let link = LinkConfig { loss, delay_ms: delay, ..LinkConfig::lan() };
        let key_bytes: [u8; 16] = seed
            .to_le_bytes()
            .repeat(2)
            .try_into()
            .expect("16 bytes");
        let key = Base64Key::from_bytes(key_bytes);
        let mut net = Network::new(link.clone(), link, seed);
        let c = Addr::new(1, 1000);
        let s = Addr::new(2, 60001);
        net.register(c, Side::Client);
        net.register(s, Side::Server);
        let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
        let mut server = MoshServer::new(key, Box::new(LineShell::new()));
        let mut sl = SessionLoop::new(SimChannel::new(net));

        drive(&mut sl, &mut client, &mut server, c, s, 3000);
        for ch in text.bytes() {
            client.keystroke(sl.now(), &[ch]);
            let until = sl.now() + 120;
            drive(&mut sl, &mut client, &mut server, c, s, until);
        }
        // Quiescence: generous for the lossiest cases (RTO <= 1 s).
        let until = sl.now() + 30_000;
        drive(&mut sl, &mut client, &mut server, c, s, until);

        // The server's line buffer saw every keystroke, in order.
        let expected = format!("$ {}", text);
        prop_assert_eq!(
            server.frame().row_text(0),
            expected.trim_end(),
            "server echoed the full input"
        );
        // The client converged to the authoritative screen, and any
        // leftover prediction overlays agree with it.
        prop_assert_eq!(client.server_frame(), server.frame());
        prop_assert_eq!(&client.display(), server.frame());
    }

    /// Roaming through an arbitrary sequence of addresses never loses
    /// keystrokes or reorders them.
    #[test]
    fn roaming_preserves_input_ordering(
        seed in any::<u64>(),
        hops in proptest::collection::vec(3u32..200, 1..5),
    ) {
        let key = Base64Key::from_bytes([9u8; 16]);
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        let s = Addr::new(2, 60001);
        let mut c = Addr::new(1, 1000);
        net.register(c, Side::Client);
        net.register(s, Side::Server);
        let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Never);
        let mut server = MoshServer::new(key, Box::new(LineShell::new()));
        let mut sl = SessionLoop::new(SimChannel::new(net));
        drive(&mut sl, &mut client, &mut server, c, s, 1000);

        let mut expected = String::from("$ ");
        for (i, hop) in hops.iter().enumerate() {
            // Roam to a new address, then type one letter.
            c = Addr::new(*hop, 1000 + i as u16);
            sl.channel_mut().network_mut().register(c, Side::Client);
            let letter = b'a' + (i as u8 % 26);
            client.keystroke(sl.now(), &[letter]);
            expected.push(letter as char);
            let until = sl.now() + 800;
            drive(&mut sl, &mut client, &mut server, c, s, until);
        }
        let until = sl.now() + 3000;
        drive(&mut sl, &mut client, &mut server, c, s, until);
        prop_assert_eq!(server.frame().row_text(0), expected.trim_end());
        prop_assert_eq!(server.target(), Some(c), "server follows the last hop");
    }
}
