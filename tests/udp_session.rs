//! Live-substrate tests: full Mosh sessions over real 127.0.0.1 UDP
//! sockets (loopback only — safe anywhere, including CI).
//!
//! The client and server each own a [`UdpChannel`] and a [`SessionLoop`];
//! a single test thread alternates short pumps between them, so each
//! pump's `wait_until` genuinely blocks on its socket. Wall-clock bounds
//! are generous: SSP retransmits through any rare loopback drop.

use mosh::core::{LineShell, MoshClient, MoshServer, Party, SessionEvent, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, UdpChannel};
use mosh::prediction::DisplayPreference;

struct UdpPair {
    client_loop: SessionLoop<UdpChannel>,
    server_loop: SessionLoop<UdpChannel>,
    client: MoshClient,
    server: MoshServer,
    c_addr: Addr,
    s_addr: Addr,
    events: Vec<SessionEvent>,
}

fn udp_pair(key_byte: u8) -> UdpPair {
    let key = Base64Key::from_bytes([key_byte; 16]);
    let server_channel = UdpChannel::bind("127.0.0.1:0").expect("server socket");
    let client_channel = UdpChannel::bind("127.0.0.1:0").expect("client socket");
    let s_addr = server_channel.local_addr();
    let c_addr = client_channel.local_addr();
    UdpPair {
        client: MoshClient::new(key.clone(), s_addr, 80, 24, DisplayPreference::Never),
        server: MoshServer::new(key, Box::new(LineShell::new())),
        client_loop: SessionLoop::new(client_channel),
        server_loop: SessionLoop::new(server_channel),
        c_addr,
        s_addr,
        events: Vec::new(),
    }
}

impl UdpPair {
    /// One alternation: a few real milliseconds on each side.
    fn step(&mut self) {
        let t = self.client_loop.now() + 4;
        self.client_loop
            .pump_until(&mut [Party::new(self.c_addr, &mut self.client)], t);
        let t = self.server_loop.now() + 4;
        let ev = self
            .server_loop
            .pump_until(&mut [Party::new(self.s_addr, &mut self.server)], t);
        self.events.extend(ev);
    }

    /// Steps until `cond` holds, panicking after ~`limit_ms` of wall time.
    fn step_until(&mut self, limit_ms: u64, what: &str, mut cond: impl FnMut(&Self) -> bool) {
        let start = std::time::Instant::now();
        while !cond(self) {
            assert!(
                start.elapsed().as_millis() < limit_ms as u128,
                "timed out waiting for: {what}"
            );
            self.step();
        }
    }
}

#[test]
fn keystroke_echo_round_trip_over_loopback_udp() {
    let mut p = udp_pair(0x21);
    p.step_until(15_000, "server prompt", |p| {
        p.client.server_frame().row_text(0) == "$"
    });
    p.client.keystroke(p.client_loop.now(), b"x");
    p.step_until(15_000, "echo of 'x'", |p| {
        p.client.server_frame().row_text(0) == "$ x"
    });
    // The server learned the client's real socket address from the wire.
    assert_eq!(p.server.target(), Some(p.c_addr));
}

#[test]
fn client_rebind_mid_session_roams_on_real_sockets() {
    let mut p = udp_pair(0x22);
    p.step_until(15_000, "server prompt", |p| {
        p.client.server_frame().row_text(0) == "$"
    });
    p.client.keystroke(p.client_loop.now(), b"a");
    p.step_until(15_000, "echo of 'a'", |p| {
        p.client.server_frame().row_text(0) == "$ a"
    });
    let old_addr = p.c_addr;
    assert_eq!(p.server.target(), Some(old_addr));

    // Roam: rebind the client's socket (new ephemeral port — a new
    // public identity, as after a network change). Nothing reconnects;
    // the next authentic datagram re-targets the server.
    p.client_loop
        .channel_mut()
        .rebind("127.0.0.1:0")
        .expect("rebind");
    p.c_addr = p.client_loop.channel().local_addr();
    assert_ne!(p.c_addr, old_addr, "ephemeral rebind moved the port");

    p.client.keystroke(p.client_loop.now(), b"b");
    p.step_until(15_000, "echo of 'b' after roam", |p| {
        p.client.server_frame().row_text(0) == "$ ab"
    });
    let new_addr = p.c_addr;
    p.step_until(15_000, "server re-target", |p| {
        p.server.target() == Some(new_addr)
    });
    assert!(
        p.events
            .iter()
            .any(|e| matches!(e, SessionEvent::Roamed { to, .. } if *to == new_addr)),
        "server loop reported the roam: {:?}",
        p.events
    );
}
