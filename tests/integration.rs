//! Cross-crate integration tests: full sessions over hostile networks,
//! driven by the event-driven `SessionLoop` instead of a 1 ms pump.

use mosh::core::{
    Editor, LineShell, MailReader, MoshClient, MoshServer, Pager, Party, SessionLoop,
};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side, SimChannel};
use mosh::prediction::DisplayPreference;

struct Session {
    sl: SessionLoop<SimChannel>,
    client: MoshClient,
    server: MoshServer,
    c: Addr,
    s: Addr,
}

fn session(
    up: LinkConfig,
    down: LinkConfig,
    seed: u64,
    app: Box<dyn mosh::core::Application>,
) -> Session {
    let key = Base64Key::from_bytes([seed as u8; 16]);
    let mut net = Network::new(up, down, seed);
    let c = Addr::new(1, 1000);
    let s = Addr::new(2, 60001);
    net.register(c, Side::Client);
    net.register(s, Side::Server);
    Session {
        sl: SessionLoop::new(SimChannel::new(net)),
        client: MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive),
        server: MoshServer::new(key, app),
        c,
        s,
    }
}

impl Session {
    fn now(&self) -> u64 {
        self.sl.now()
    }

    fn run(&mut self, until: u64) {
        self.sl.pump_until(
            &mut [
                Party::new(self.c, &mut self.client),
                Party::new(self.s, &mut self.server),
            ],
            until,
        );
    }

    /// Replaces the emulated network mid-session (blackouts, recoveries).
    /// The incoming network is fast-forwarded to the session clock first:
    /// `SimChannel` reads time from its network, and endpoint-visible
    /// time must never go backwards.
    fn swap_network(&mut self, mut net: Network) {
        net.advance_to(self.sl.now());
        std::mem::swap(self.sl.channel_mut().network_mut(), &mut net);
    }
}

fn type_line(se: &mut Session, line: &[u8], gap: u64) {
    for b in line {
        se.client.keystroke(se.now(), &[*b]);
        let until = se.now() + gap;
        se.run(until);
    }
}

#[test]
fn shell_session_over_lossy_3g() {
    let lossy = LinkConfig {
        delay_ms: 220,
        jitter_ms: 40,
        loss: 0.08,
        ..LinkConfig::lan()
    };
    let mut se = session(lossy.clone(), lossy, 1, Box::new(LineShell::new()));
    se.run(2500);
    type_line(&mut se, b"echo resilient\r", 160);
    let until = se.now() + 8000;
    se.run(until);
    let text = se.client.server_frame().to_text();
    assert!(text.contains("resilient"), "output arrived: {text}");
    // Display (with overlays) equals authority after quiescence.
    assert_eq!(se.client.display(), *se.client.server_frame());
}

#[test]
fn editor_full_screen_over_satellite_latency() {
    let sat = LinkConfig {
        delay_ms: 300,
        ..LinkConfig::lan()
    };
    let mut se = session(sat.clone(), sat, 2, Box::new(Editor::new()));
    se.run(3000);
    type_line(&mut se, b"hello editor", 150);
    let until = se.now() + 4000;
    se.run(until);
    let row0 = se.client.server_frame().row_text(0);
    assert!(row0.contains("hello editor"), "typed text visible: {row0}");
    // The editor's status line made it across too.
    assert!(se.client.server_frame().row_text(23).contains("INSERT"));
}

#[test]
fn mail_navigation_syncs_highlight() {
    let mut se = session(
        LinkConfig::lan(),
        LinkConfig::lan(),
        3,
        Box::new(MailReader::new(10)),
    );
    se.run(1000);
    se.client.keystroke(se.now(), b"n");
    let until = se.now() + 500;
    se.run(until);
    se.client.keystroke(se.now(), b"n");
    let until = se.now() + 500;
    se.run(until);
    // The highlight (inverse video) sits on the third message (index 2).
    let f = se.client.server_frame();
    assert!(f.cell(3, 0).attrs.inverse, "bar on row 3 after two 'n'");
}

#[test]
fn pager_over_intermittent_connectivity() {
    // 100% loss blackout in the middle of a session; SSP recovers silently.
    let mut se = session(
        LinkConfig::lan(),
        LinkConfig::lan(),
        4,
        Box::new(Pager::new(200)),
    );
    se.run(1000);
    let first_page = se.client.server_frame().row_text(0);

    // Page forward twice during a blackout (packets vanish).
    se.client.keystroke(se.now(), b" ");
    // Swap in a dead network.
    let mut dead = Network::new(
        LinkConfig {
            loss: 1.0,
            ..LinkConfig::lan()
        },
        LinkConfig {
            loss: 1.0,
            ..LinkConfig::lan()
        },
        4,
    );
    dead.register(se.c, Side::Client);
    dead.register(se.s, Side::Server);
    se.swap_network(dead);
    let until = se.now() + 4000;
    se.run(until);
    assert_eq!(
        se.client.server_frame().row_text(0),
        first_page,
        "nothing arrives during the blackout"
    );

    // Connectivity returns; retransmission heals the session.
    let mut alive = Network::new(LinkConfig::lan(), LinkConfig::lan(), 4);
    alive.register(se.c, Side::Client);
    alive.register(se.s, Side::Server);
    se.swap_network(alive);
    let until = se.now() + 8000;
    se.run(until);
    assert_ne!(se.client.server_frame().row_text(1), "", "screen updated");
    assert!(
        se.client.server_frame().to_text().contains("More"),
        "pager state synced"
    );
}

#[test]
fn control_c_stops_flood_within_a_round_trip() {
    // The §2.3 claim, end to end: the screen keeps changing during the
    // flood (frames skip intermediate states), and ^C lands promptly.
    let narrow = LinkConfig {
        delay_ms: 50,
        rate_bytes_per_ms: Some(50),
        queue_bytes: 128 * 1024,
        ..LinkConfig::lan()
    };
    let mut se = session(LinkConfig::lan(), narrow, 5, Box::new(LineShell::new()));
    se.run(1000);
    type_line(&mut se, b"yes\r", 100);
    let until = se.now() + 3000;
    se.run(until);
    assert!(
        se.client.server_frame().to_text().contains('y'),
        "flood visible"
    );

    se.client.keystroke(se.now(), &[0x03]);
    let pressed = se.now();
    let mut seen_at = None;
    while se.now() < pressed + 10_000 {
        let until = se.now() + 10;
        se.run(until);
        if se.client.server_frame().to_text().contains("^C") {
            seen_at = Some(se.now());
            break;
        }
    }
    let latency = seen_at.expect("^C must appear") - pressed;
    assert!(
        latency < 1000,
        "interrupt visible within ~RTT+frame, took {latency} ms"
    );
}

#[test]
fn resize_mid_session_repaints_correctly() {
    let mut se = session(
        LinkConfig::lan(),
        LinkConfig::lan(),
        6,
        Box::new(LineShell::new()),
    );
    se.run(1000);
    type_line(&mut se, b"echo wide\r", 120);
    let until = se.now() + 1000;
    se.run(until);
    se.client.resize(se.now(), 132, 40);
    let until = se.now() + 2000;
    se.run(until);
    assert_eq!(se.server.frame().width(), 132);
    assert_eq!(se.client.server_frame().width(), 132);
    assert!(se.client.server_frame().to_text().contains("wide"));
}

#[test]
fn tampered_datagrams_never_corrupt_the_session() {
    let mut se = session(
        LinkConfig::lan(),
        LinkConfig::lan(),
        7,
        Box::new(LineShell::new()),
    );
    se.run(500);
    // Inject garbage and bit-flipped copies at the server.
    se.server.receive(se.now(), se.c, b"complete garbage");
    se.server.receive(se.now(), se.c, &[0u8; 64]);
    type_line(&mut se, b"ok\r", 100);
    let until = se.now() + 2000;
    se.run(until);
    assert!(se.client.server_frame().to_text().contains("ok"));
}

#[test]
fn heartbeats_keep_last_heard_fresh_when_idle() {
    let mut se = session(
        LinkConfig::lan(),
        LinkConfig::lan(),
        8,
        Box::new(LineShell::new()),
    );
    se.run(15_000);
    let heard = se.client.last_heard().expect("server spoke");
    assert!(se.now() - heard < 3500, "heartbeats every 3 s keep contact");
}
