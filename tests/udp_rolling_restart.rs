//! Rolling restart over real loopback UDP: the CI smoke for the
//! cross-process handoff path.
//!
//! Two live Mosh sessions run behind ONE server socket. Mid-session, the
//! "old process" hub serializes every session into a handoff container
//! (through an actual file), releases the UDP socket, and dies; a fresh
//! hub adopts the socket and restores the sessions from the container.
//! The clients — real sockets on their own threads, never told about any
//! of this — keep typing straight through the restart and see nothing
//! but their own echoes. At worst the protocol cost is a Mosh-style
//! retarget: the restored server re-learns each client's address from
//! the source of its next authentic datagram (§2.2), exactly as if the
//! client had roamed.

use mosh::core::hub::snapshot;
use mosh::core::{HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Poller, UdpChannel, UdpPoller};
use mosh::prediction::DisplayPreference;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn key(i: usize) -> Base64Key {
    let mut bytes = [0u8; 16];
    bytes[0] = 0x40 + i as u8;
    bytes[1] = 0xc3;
    Base64Key::from_bytes(bytes)
}

#[test]
fn rolling_restart_is_invisible_over_loopback() {
    const N: usize = 2;
    let server_channel = UdpChannel::bind("127.0.0.1:0").expect("server socket");
    let server_addr = server_channel.local_addr();

    let mut hub = ServerHub::new(UdpPoller::new());
    let mut tok = hub.poller_mut().add(server_channel);
    let mut sids = Vec::new();
    let mut servers: Vec<MoshServer> = Vec::new();
    for i in 0..N {
        sids.push(hub.add_session(tok));
        servers.push(MoshServer::new(key(i), Box::new(LineShell::new())));
    }

    // Client i types its first letter, reports the echo, then waits for
    // the restart before typing its second letter.
    let first_echoed = Arc::new(AtomicUsize::new(0));
    let restarted = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for i in 0..N {
        let first_echoed = first_echoed.clone();
        let restarted = restarted.clone();
        let done = done.clone();
        let key = key(i);
        clients.push(std::thread::spawn(move || {
            let channel = UdpChannel::bind("127.0.0.1:0").expect("client socket");
            let addr = channel.local_addr();
            let mut client = MoshClient::new(key, server_addr, 80, 24, DisplayPreference::Never);
            let mut sl = SessionLoop::new(channel);
            let start = std::time::Instant::now();
            let a = (b'a' + i as u8) as char;
            let b = (b'x' + i as u8) as char;
            let after_first = format!("$ {a}");
            let after_second = format!("$ {a}{b}");
            // 0 = waiting for the prompt, 1 = typed the first letter,
            // 2 = saw its echo, 3 = typed the second letter.
            let mut stage = 0;
            loop {
                assert!(
                    start.elapsed().as_secs() < 60,
                    "client {i} stalled at stage {stage} (screen: {:?})",
                    client.server_frame().row_text(0)
                );
                let t = sl.now() + 5;
                sl.pump_until(&mut [Party::new(addr, &mut client)], t);
                let row = client.server_frame().row_text(0);
                match stage {
                    0 if row == "$" => {
                        client.keystroke(sl.now(), &[a as u8]);
                        stage = 1;
                    }
                    1 if row == after_first => {
                        first_echoed.fetch_add(1, Ordering::SeqCst);
                        stage = 2;
                    }
                    2 if restarted.load(Ordering::SeqCst) == 1 => {
                        client.keystroke(sl.now(), &[b as u8]);
                        stage = 3;
                    }
                    3 if row == after_second => break,
                    _ => {}
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            (i, client.server_frame().row_text(0))
        }));
    }

    // Old process: serve until every client has its first echo.
    let start = std::time::Instant::now();
    while first_echoed.load(Ordering::SeqCst) < N {
        assert!(
            start.elapsed().as_secs() < 90,
            "pre-restart phase timed out"
        );
        let target = hub.now(sids[0]) + 10;
        let mut leases: Vec<[Party<'_>; 1]> = servers
            .iter_mut()
            .map(|s| [Party::new(server_addr, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump(&mut sessions);
    }

    // The rolling restart: sessions to a file, socket out of the old
    // poller, old hub dropped; a brand-new hub adopts both.
    let entries: Vec<(usize, Vec<u8>)> = sids
        .iter()
        .zip(servers.iter())
        .map(|(sid, s)| (sid.0, snapshot::snapshot_server(s)))
        .collect();
    let path = std::env::temp_dir().join(format!("mosh-restart-{}.bin", std::process::id()));
    snapshot::write_handoff(&path, &entries).expect("handoff written");
    let restored = snapshot::read_handoff(&path)
        .expect("handoff read")
        .expect("handoff decodes");
    let _ = std::fs::remove_file(&path);

    let socket = hub
        .poller_mut()
        .extract(tok)
        .expect("socket leaves the old process");
    drop(hub);
    drop(servers);

    let mut hub = ServerHub::new(UdpPoller::new());
    tok = hub.poller_mut().add(socket);
    sids = (0..N).map(|_| hub.add_session(tok)).collect();
    let mut servers: Vec<MoshServer> = restored
        .into_iter()
        .map(|(_, framed)| {
            snapshot::restore_server(&framed, Box::new(LineShell::new()))
                .expect("handoff snapshot decodes")
        })
        .collect();
    restarted.store(1, Ordering::SeqCst);

    // New process: serve the restored sessions to completion.
    let start = std::time::Instant::now();
    while done.load(Ordering::SeqCst) < N {
        assert!(
            start.elapsed().as_secs() < 90,
            "post-restart phase timed out"
        );
        let target = hub.now(sids[0]) + 10;
        let mut leases: Vec<[Party<'_>; 1]> = servers
            .iter_mut()
            .map(|s| [Party::new(server_addr, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump(&mut sessions);
    }

    for c in clients {
        let (i, row) = c.join().expect("client thread");
        let expected = format!("$ {}{}", (b'a' + i as u8) as char, (b'x' + i as u8) as char);
        assert_eq!(row, expected, "client {i} rode through the restart");
    }
    for (i, server) in servers.iter().enumerate() {
        let expected = format!("$ {}{}", (b'a' + i as u8) as char, (b'x' + i as u8) as char);
        assert_eq!(server.frame().row_text(0), expected, "server {i} screen");
        assert!(
            server.target().is_some(),
            "restored server {i} re-learned its client from authentic traffic"
        );
        assert_eq!(
            server.transport_stats().datagrams_rejected,
            0,
            "session {i} was never fed a foreign datagram"
        );
    }
}
