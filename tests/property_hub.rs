//! Property: the hub demux never leaks a datagram across sessions.
//!
//! The hostile case from the paper's §2.2 roaming design: two sessions
//! share one server receive address, and *both clients roam to the same
//! source address* (one NAT, two phones). Address-based demultiplexing is
//! then impossible — source and destination are identical for both
//! sessions — so the hub must fall back to cryptographic authentication
//! for every datagram, and must never feed one session's traffic to the
//! other's endpoint.
//!
//! "Never misrouted" is observable two ways, both asserted under random
//! typing, keys, and network seeds: each endpoint's rejected-datagram
//! counter stays zero (a misroute is rejected by the receiving transport
//! and counted), and each terminal ends with exactly its own user's
//! keystrokes.

use mosh::core::{HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionId};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Poller, Side, SimChannel, SimPoller};
use mosh::prediction::DisplayPreference;
use proptest::prelude::*;

const SERVER: Addr = Addr::new(2, 60001);
const CLIENT_A: Addr = Addr::new(1, 1001);
const CLIENT_B: Addr = Addr::new(1, 1002);
/// The shared post-roam source address (both clients behind one NAT).
const NAT: Addr = Addr::new(9, 9999);

struct TwoSessions {
    hub: ServerHub<SimPoller>,
    sids: [SessionId; 2],
    clients: [MoshClient; 2],
    servers: [MoshServer; 2],
    client_addrs: [Addr; 2],
}

impl TwoSessions {
    fn new(seed: u64, key_a: u8, key_b: u8) -> Self {
        let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
        for addr in [CLIENT_A, CLIENT_B, NAT] {
            net.register(addr, Side::Client);
        }
        net.register(SERVER, Side::Server);

        let mut hub = ServerHub::new(SimPoller::new());
        let tok = hub.poller_mut().add(SimChannel::new(net));
        let sids = [hub.add_session(tok), hub.add_session(tok)];
        let keys = [
            Base64Key::from_bytes([key_a; 16]),
            Base64Key::from_bytes([key_b; 16]),
        ];
        TwoSessions {
            hub,
            sids,
            clients: [
                MoshClient::new(keys[0].clone(), SERVER, 80, 24, DisplayPreference::Never),
                MoshClient::new(keys[1].clone(), SERVER, 80, 24, DisplayPreference::Never),
            ],
            servers: [
                MoshServer::new(keys[0].clone(), Box::new(LineShell::new())),
                MoshServer::new(keys[1].clone(), Box::new(LineShell::new())),
            ],
            client_addrs: [CLIENT_A, CLIENT_B],
        }
    }

    fn pump(&mut self, target: u64) {
        let [ca, cb] = &mut self.clients;
        let [sa, sb] = &mut self.servers;
        let mut pa = [Party::new(self.client_addrs[0], ca), Party::new(SERVER, sa)];
        let mut pb = [Party::new(self.client_addrs[1], cb), Party::new(SERVER, sb)];
        self.hub.pump(&mut [
            HubSession::new(self.sids[0], &mut pa, target),
            HubSession::new(self.sids[1], &mut pb, target),
        ]);
    }

    fn now(&self) -> u64 {
        self.hub.now(self.sids[0])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn no_cross_session_leakage_when_both_roam_to_one_address(
        seed in any::<u64>(),
        key_a in 1u8..120,
        key_delta in 1u8..120,
        text_a in "[a-m]{1,10}",
        text_b in "[n-z]{1,10}",
        roam_after in 1usize..8,
    ) {
        let key_b = key_a.wrapping_add(key_delta);
        let mut s = TwoSessions::new(seed, key_a, key_b);

        // Both sessions establish from distinct addresses (the server
        // receive address is shared and therefore ambiguous from the
        // very first datagram — authentication routes even the hellos).
        s.pump(2_000);
        prop_assert_eq!(s.servers[0].target(), Some(CLIENT_A));
        prop_assert_eq!(s.servers[1].target(), Some(CLIENT_B));

        // Interleaved typing; part-way through, BOTH clients roam to the
        // same NAT address mid-stream.
        let longest = text_a.len().max(text_b.len());
        for i in 0..longest {
            if i == roam_after.min(longest) {
                s.client_addrs = [NAT, NAT];
            }
            let at = s.now();
            if let Some(b) = text_a.as_bytes().get(i) {
                s.clients[0].keystroke(at, &[*b]);
            }
            if let Some(b) = text_b.as_bytes().get(i) {
                s.clients[1].keystroke(at, &[*b]);
            }
            let t = at + 200;
            s.pump(t);
        }
        if roam_after >= longest {
            s.client_addrs = [NAT, NAT];
            s.pump(s.now() + 200);
        }
        // Let retransmissions settle well past any RTO.
        s.pump(s.now() + 10_000);

        // Both sessions roamed to the SAME address and kept working.
        prop_assert_eq!(s.servers[0].target(), Some(NAT), "A follows the roam");
        prop_assert_eq!(s.servers[1].target(), Some(NAT), "B follows the roam");

        // Each terminal holds exactly its own user's text...
        prop_assert_eq!(s.servers[0].frame().row_text(0), format!("$ {}", text_a));
        prop_assert_eq!(s.servers[1].frame().row_text(0), format!("$ {}", text_b));
        // ...each client converged to its own server's screen...
        prop_assert_eq!(s.clients[0].server_frame(), s.servers[0].frame());
        prop_assert_eq!(s.clients[1].server_frame(), s.servers[1].frame());

        // ...and no endpoint ever saw a foreign datagram: a misroute
        // would fail authentication at the endpoint and be counted.
        for (who, rejected) in [
            ("client A", s.clients[0].transport_stats().datagrams_rejected),
            ("client B", s.clients[1].transport_stats().datagrams_rejected),
            ("server A", s.servers[0].transport_stats().datagrams_rejected),
            ("server B", s.servers[1].transport_stats().datagrams_rejected),
        ] {
            prop_assert_eq!(rejected, 0, "{} was fed a foreign datagram", who);
        }

        // The ambiguous paths were genuinely exercised: every delivery to
        // the shared server address (and to the shared NAT address after
        // the roam) went through the authentication fallback.
        let stats = s.hub.stats();
        prop_assert!(stats.auth_routed > 0, "auth fallback never ran: {:?}", stats);
        prop_assert!(stats.delivered > 0);
    }
}
