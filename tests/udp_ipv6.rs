//! IPv6 live-substrate tests: full Mosh sessions over `[::1]` loopback
//! sockets, and the family-crossing roam — an IPv4 socket rebound to an
//! IPv6 one mid-session, nothing reconnecting.
//!
//! Like `tests/udp_session.rs`, a single test thread alternates short
//! pumps between the two ends; the server side runs the production shape
//! (a `ServerHub` over a `UdpPoller`). Environments without IPv6
//! loopback or without dual-stack sockets skip gracefully (loudly, on
//! stderr) instead of failing.

use mosh::core::{
    HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionEvent, SessionId,
    SessionLoop,
};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, Poller, UdpChannel, UdpPoller};
use mosh::prediction::DisplayPreference;

/// IPv6 loopback as an `Addr`: `[::1]`.
fn v6_loopback(port: u16) -> Addr {
    Addr::v6(1, port)
}

/// IPv4 loopback as an `Addr`: `127.0.0.1`.
fn v4_loopback(port: u16) -> Addr {
    Addr::new(0x7f00_0001, port)
}

struct HubServer {
    hub: ServerHub<UdpPoller>,
    sid: SessionId,
    server: MoshServer,
    listen: Addr,
    events: Vec<SessionEvent>,
}

impl HubServer {
    fn new(channel: UdpChannel, key: Base64Key) -> Self {
        let listen = channel.local_addr();
        let mut hub = ServerHub::new(UdpPoller::new());
        let tok = hub.poller_mut().add(channel);
        let sid = hub.add_session(tok);
        HubServer {
            hub,
            sid,
            server: MoshServer::new(key, Box::new(LineShell::new())),
            listen,
            events: Vec::new(),
        }
    }

    fn step(&mut self) {
        let t = self.hub.now(self.sid) + 4;
        let mut parties = [Party::new(self.listen, &mut self.server)];
        let ev = self
            .hub
            .pump(&mut [HubSession::new(self.sid, &mut parties, t)]);
        self.events.extend(ev.into_iter().map(|(_, e)| e));
    }
}

struct Client {
    sl: SessionLoop<UdpChannel>,
    client: MoshClient,
    addr: Addr,
}

impl Client {
    fn new(channel: UdpChannel, key: Base64Key, server: Addr) -> Self {
        let addr = channel.local_addr();
        Client {
            sl: SessionLoop::new(channel),
            client: MoshClient::new(key, server, 80, 24, DisplayPreference::Never),
            addr,
        }
    }

    fn step(&mut self) {
        let t = self.sl.now() + 4;
        self.sl
            .pump_until(&mut [Party::new(self.addr, &mut self.client)], t);
    }
}

fn step_until(
    client: &mut Client,
    server: &mut HubServer,
    limit_ms: u64,
    what: &str,
    mut cond: impl FnMut(&Client, &HubServer) -> bool,
) {
    let start = std::time::Instant::now();
    while !cond(client, server) {
        assert!(
            start.elapsed().as_millis() < limit_ms as u128,
            "timed out waiting for: {what}"
        );
        client.step();
        server.step();
    }
}

#[test]
fn keystroke_echo_round_trip_over_ipv6_loopback() {
    let Ok(server_channel) = UdpChannel::bind("[::1]:0") else {
        eprintln!("skipping: no IPv6 loopback in this environment");
        return;
    };
    let client_channel = UdpChannel::bind("[::1]:0").expect("second [::1] socket");
    let key = Base64Key::from_bytes([0x61; 16]);

    let s_addr = server_channel.local_addr();
    assert!(s_addr.is_v6(), "[::1] maps to a V6 host: {s_addr}");
    assert_eq!(s_addr, v6_loopback(s_addr.port));

    let mut server = HubServer::new(server_channel, key.clone());
    let mut client = Client::new(client_channel, key, s_addr);
    assert!(client.addr.is_v6());

    step_until(&mut client, &mut server, 15_000, "server prompt", |c, _| {
        c.client.server_frame().row_text(0) == "$"
    });
    client.client.keystroke(client.sl.now(), b"x");
    step_until(&mut client, &mut server, 15_000, "echo of 'x'", |c, _| {
        c.client.server_frame().row_text(0) == "$ x"
    });
    // The server learned the client's real IPv6 socket address.
    let target = server.server.target().expect("target learned");
    assert!(target.is_v6(), "learned target is IPv6: {target}");
    assert_eq!(target, client.addr);
}

#[test]
fn mid_session_rebind_from_ipv4_socket_to_ipv6_socket() {
    // Probe dual-stack reachability first (Linux bindv6only=0): an IPv4
    // sender must reach a `[::]` wildcard socket. Skip where it cannot.
    {
        let Ok(probe6) = std::net::UdpSocket::bind("[::]:0") else {
            eprintln!("skipping: no IPv6 sockets in this environment");
            return;
        };
        let probe_port = probe6.local_addr().expect("probe addr").port();
        let probe4 = std::net::UdpSocket::bind("127.0.0.1:0").expect("v4 probe socket");
        let reachable = probe4.send_to(b"?", ("127.0.0.1", probe_port)).is_ok() && {
            probe6
                .set_read_timeout(Some(std::time::Duration::from_millis(500)))
                .expect("probe timeout");
            probe6.recv_from(&mut [0u8; 4]).is_ok()
        };
        if !reachable {
            eprintln!("skipping: no dual-stack v4->[::] delivery in this environment");
            return;
        }
    }

    // The server listens dual-stack: one `[::]` socket reachable from
    // both families.
    let server_channel = UdpChannel::bind("[::]:0").expect("dual-stack server socket");
    let port = server_channel.local_addr().port;

    let key = Base64Key::from_bytes([0x62; 16]);
    let mut server = HubServer::new(server_channel, key.clone());

    // Phase 1: the client lives on an IPv4 socket and reaches the server
    // by its IPv4 identity.
    let client_channel = UdpChannel::bind("127.0.0.1:0").expect("v4 client socket");
    let mut client = Client::new(client_channel, key, v4_loopback(port));
    assert!(!client.addr.is_v6());

    step_until(&mut client, &mut server, 15_000, "server prompt", |c, _| {
        c.client.server_frame().row_text(0) == "$"
    });
    client.client.keystroke(client.sl.now(), b"a");
    step_until(&mut client, &mut server, 15_000, "echo of 'a'", |c, _| {
        c.client.server_frame().row_text(0) == "$ a"
    });
    let v4_target = server.server.target().expect("v4-era target");
    assert!(
        !v4_target.is_v6(),
        "v4-mapped source normalized to V4: {v4_target}"
    );

    // Phase 2: roam across address families. Rebind the client onto an
    // IPv6 socket and point it at the server's IPv6 identity. Nothing
    // reconnects; the next authentic datagram re-targets the server
    // (paper §2.2 — the address changed, the session did not).
    client
        .sl
        .channel_mut()
        .rebind("[::]:0")
        .expect("rebind onto an IPv6 socket");
    client.addr = client.sl.channel().local_addr();
    assert!(client.addr.is_v6(), "now sending from {}", client.addr);
    client.client.retarget(v6_loopback(port));

    client.client.keystroke(client.sl.now(), b"b");
    step_until(
        &mut client,
        &mut server,
        15_000,
        "echo of 'b' after the family switch",
        |c, _| c.client.server_frame().row_text(0) == "$ ab",
    );
    let roamed = server.server.target().expect("post-roam target");
    assert!(roamed.is_v6(), "server now targets IPv6: {roamed}");
    assert!(
        server
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::Roamed { to, .. } if to.is_v6())),
        "the hub reported the cross-family roam: {:?}",
        server.events
    );
    assert_eq!(
        server.server.frame().row_text(0),
        "$ ab",
        "no keystroke lost across the family switch"
    );
}
