//! The C10K loopback smoke: the persistent shard runtime plus the
//! batched distributor path, under a mostly-idle fleet with a small live
//! subset — the shape SSP was designed for (conf_usenix_WinsteinB12 §2:
//! datagram state sync, no per-session connection churn), scaled down
//! from the `hub_c100k` bench so it runs on every push.
//!
//! Thousands of registered Mosh server sessions sit idle behind **one**
//! UDP socket while a handful of real loopback clients type and wait for
//! their echoes. The idle fleet must cost only registration — wakeups
//! scale with *live* sessions — and every live session must converge,
//! with zero shard panics and zero unexplained drops.
//!
//! Session count defaults low enough for debug-profile CI tier-1; the
//! dedicated CI step raises it via `MOSH_C10K_SESSIONS=10000` on the
//! release profile.

use mosh::core::{HubSession, LineShell, MoshClient, MoshServer, Party, SessionLoop, ShardedHub};
use mosh::crypto::Base64Key;
use mosh::net::UdpChannel;
use mosh::prediction::DisplayPreference;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn key(i: usize) -> Base64Key {
    let mut bytes = [0u8; 16];
    bytes[..4].copy_from_slice(&(i as u32).to_le_bytes());
    bytes[15] = 0xc1;
    Base64Key::from_bytes(bytes)
}

fn session_count() -> usize {
    std::env::var("MOSH_C10K_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

#[test]
fn mostly_idle_fleet_serves_its_live_sessions() {
    const SHARDS: usize = 4;
    const LIVE: usize = 3;
    let total = session_count().max(LIVE);

    let socket = std::net::UdpSocket::bind("127.0.0.1:0").expect("server socket");
    let server_addr = mosh::net::channel::addr_from_socket(socket.local_addr().unwrap());
    let (mut hub, mut dist) = ShardedHub::over_distributor(socket, SHARDS).expect("distributor");

    // The whole fleet registers up front; only the first LIVE ever hear
    // from a client.
    let mut sids = Vec::with_capacity(total);
    let mut servers: Vec<MoshServer> = Vec::with_capacity(total);
    for i in 0..total {
        sids.push(hub.add_distributed_session());
        servers.push(MoshServer::new(key(i), Box::new(LineShell::new())));
    }
    assert_eq!(hub.session_count(), total);

    let done = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for i in 0..LIVE {
        let done = done.clone();
        let key = key(i);
        clients.push(std::thread::spawn(move || {
            let channel = UdpChannel::bind("127.0.0.1:0").expect("client socket");
            let addr = channel.local_addr();
            let mut client = MoshClient::new(key, server_addr, 80, 24, DisplayPreference::Never);
            let mut sl = SessionLoop::new(channel);
            let start = std::time::Instant::now();
            let expected = format!("$ {}", (b'a' + i as u8) as char);
            let mut typed = false;
            loop {
                assert!(
                    start.elapsed().as_secs() < 120,
                    "client {i} timed out waiting for {expected:?} (screen: {:?})",
                    client.server_frame().row_text(0)
                );
                let t = sl.now() + 5;
                sl.pump_until(&mut [Party::new(addr, &mut client)], t);
                let row = client.server_frame().row_text(0);
                if row == "$" && !typed {
                    typed = true;
                    client.keystroke(sl.now(), &[b'a' + i as u8]);
                } else if row == expected {
                    break;
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            (i, client.server_frame().row_text(0))
        }));
    }

    // Every session is leased every pump — the idle fleet rides along,
    // as a real server's accept loop would lease its whole registry —
    // while this thread seats the distributor.
    let start = std::time::Instant::now();
    while done.load(Ordering::SeqCst) < LIVE {
        assert!(start.elapsed().as_secs() < 180, "c10k smoke timed out");
        let target = hub.now(sids[0]) + 10;
        let mut leases: Vec<[Party<'_>; 1]> = servers
            .iter_mut()
            .map(|s| [Party::new(server_addr, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump_with(&mut sessions, || dist.pump(10));
    }

    for c in clients {
        let (i, row) = c.join().expect("client thread");
        assert_eq!(row, format!("$ {}", (b'a' + i as u8) as char));
    }

    let stats = hub.stats();
    assert_eq!(stats.shard_panics, 0, "no shard was lost");
    assert!(stats.delivered > 0, "live traffic flowed");
    assert_eq!(stats.feed_overflow, 0, "no feed queue shed: {stats:?}");
    assert!(
        stats.feed_hints >= 1,
        "replies taught the distributor its source hints: {stats:?}"
    );
}
