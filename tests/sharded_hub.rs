//! The sharded-hub acceptance bar: spreading sessions over worker
//! threads changes *nothing* a session can observe.
//!
//! * A proptest drives random session counts, shard counts, keystroke
//!   schedules, and delivery interleavings through a [`ShardedHub`] and
//!   through the single-threaded [`ServerHub`], and requires the full
//!   per-session wire transcripts (both directions, raw bytes, with
//!   timestamps) to be **byte-identical** — including the §2.2 hostile
//!   case where every client NAT-roams onto one shared address
//!   mid-stream while the sessions land on *different* shards.
//! * A live smoke runs Mosh sessions spread over shards behind **one**
//!   UDP socket, routed by the distributor with cross-shard
//!   authentication fan-out, and requires that no endpoint ever accepts
//!   (or is even fed) a foreign datagram.

use mosh::core::{
    Endpoint, HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionEvent,
    SessionId, SessionLoop, ShardedHub,
};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Poller, Side, SimChannel, SimPoller, UdpChannel};
use mosh::prediction::DisplayPreference;
use mosh::ssp::datagram::Opened;
use proptest::prelude::*;

const S: Addr = Addr::new(2, 60001);
/// The shared post-roam source address (every client behind one NAT).
const NAT: Addr = Addr::new(9, 9999);

/// One wire-level action: (virtual time, 's'end or 'r'eceive, peer, bytes).
type Transcript = Vec<(u64, u8, Addr, Vec<u8>)>;

/// Records raw wire traffic around an endpoint (sends and raw receives;
/// opened-token receives are pinned via the peer's send log).
struct Recorder<E> {
    inner: E,
    log: Transcript,
}

impl<E> Recorder<E> {
    fn new(inner: E) -> Self {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }
}

impl<E: Endpoint> Endpoint for Recorder<E> {
    fn receive(&mut self, now: u64, from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>) {
        self.log.push((now, b'r', from, wire.to_vec()));
        self.inner.receive(now, from, wire, events);
    }

    fn tick(&mut self, now: u64, out: &mut Vec<(Addr, Vec<u8>)>, events: &mut Vec<SessionEvent>) {
        let start = out.len();
        self.inner.tick(now, out, events);
        for (to, wire) in &out[start..] {
            self.log.push((now, b's', *to, wire.clone()));
        }
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        self.inner.next_wakeup(now)
    }

    fn last_heard(&self) -> Option<u64> {
        self.inner.last_heard()
    }

    fn authenticates(&self, wire: &[u8]) -> bool {
        self.inner.authenticates(wire)
    }

    fn try_open(&mut self, wire: &[u8]) -> Option<Opened> {
        self.inner.try_open(wire)
    }

    fn receive_opened(
        &mut self,
        now: u64,
        from: Addr,
        opened: Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        self.inner.receive_opened(now, from, opened, events);
    }
}

fn key(i: usize) -> Base64Key {
    let mut bytes = [0u8; 16];
    bytes[0] = 0x70 + i as u8;
    bytes[1] = 0x0d;
    Base64Key::from_bytes(bytes)
}

fn client_addr(i: usize) -> Addr {
    Addr::new(1, 1000 + i as u16)
}

/// One user's world: its own emulated network with the client's home
/// address, the NAT address it may roam to, and the server address.
fn world(i: usize, seed: u64) -> SimChannel {
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), seed);
    net.register(client_addr(i), Side::Client);
    net.register(NAT, Side::Client);
    net.register(S, Side::Server);
    SimChannel::new(net)
}

fn endpoints(i: usize) -> (Recorder<MoshClient>, Recorder<MoshServer>) {
    (
        Recorder::new(MoshClient::new(key(i), S, 80, 24, DisplayPreference::Never)),
        Recorder::new(MoshServer::new(key(i), Box::new(LineShell::new()))),
    )
}

/// The common script shape: user `i` types `texts[i]` one byte per step,
/// roaming its client onto the shared NAT address after `roam_after`
/// steps. Returns per-user (client transcript, server transcript, final
/// screen row) — the full observable behavior of every session.
struct Run {
    clients: Vec<Transcript>,
    servers: Vec<Transcript>,
    screens: Vec<String>,
    /// (delivered, dropped, auth_routed) — cross-checked between runs.
    delivered: u64,
}

/// Drives `users` sessions with any hub through one closure so the
/// single-threaded and sharded runs share every line of schedule code.
fn drive(
    texts: &[String],
    seed: u64,
    roam_after: usize,
    mut pump: impl FnMut(&mut [HubSession<'_, '_>]) -> Vec<(SessionId, SessionEvent)>,
    sids: &[SessionId],
    recs: &mut [(Recorder<MoshClient>, Recorder<MoshServer>)],
) {
    let _ = seed;
    let users = texts.len();
    let longest = texts.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut addrs: Vec<Addr> = (0..users).map(client_addr).collect();
    let mut now = 0u64;
    for step in 0..=longest {
        if step == roam_after.min(longest) {
            // Every client roams onto ONE shared address, mid-stream.
            for a in addrs.iter_mut() {
                *a = NAT;
            }
        }
        // Pump everyone to this step's deadline, then inject keystrokes.
        now += 137;
        let mut leases: Vec<Vec<Party<'_>>> = recs
            .iter_mut()
            .enumerate()
            .map(|(i, (c, s))| vec![Party::new(addrs[i], c), Party::new(S, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, now))
            .collect();
        pump(&mut sessions);
        drop(sessions);
        drop(leases);
        for (i, text) in texts.iter().enumerate() {
            if let Some(b) = text.as_bytes().get(step) {
                recs[i].0.inner.keystroke(now, &[*b]);
            }
        }
    }
    // Let retransmissions and acks settle well past any RTO.
    now += 8_000;
    let mut leases: Vec<Vec<Party<'_>>> = recs
        .iter_mut()
        .enumerate()
        .map(|(i, (c, s))| vec![Party::new(addrs[i], c), Party::new(S, s)])
        .collect();
    let mut sessions: Vec<HubSession<'_, '_>> = leases
        .iter_mut()
        .zip(sids.iter())
        .map(|(parties, sid)| HubSession::new(*sid, parties, now))
        .collect();
    pump(&mut sessions);
}

fn single_threaded_run(texts: &[String], seed: u64, roam_after: usize) -> Run {
    let mut hub = ServerHub::new(SimPoller::new());
    let mut recs: Vec<_> = (0..texts.len()).map(endpoints).collect();
    let sids: Vec<SessionId> = (0..texts.len())
        .map(|i| {
            let tok = hub.poller_mut().add(world(i, seed));
            hub.add_session(tok)
        })
        .collect();
    drive(
        texts,
        seed,
        roam_after,
        |sessions| hub.pump(sessions),
        &sids,
        &mut recs,
    );
    let delivered = hub.stats().delivered;
    collect(recs, delivered)
}

fn sharded_run(texts: &[String], seed: u64, roam_after: usize, shards: usize) -> Run {
    let mut hub = ShardedHub::with_shards(shards, SimPoller::new);
    let mut recs: Vec<_> = (0..texts.len()).map(endpoints).collect();
    let sids: Vec<SessionId> = (0..texts.len())
        .map(|i| hub.add_session(world(i, seed)))
        .collect();
    drive(
        texts,
        seed,
        roam_after,
        |sessions| hub.pump(sessions),
        &sids,
        &mut recs,
    );
    let delivered = hub.stats().delivered;
    collect(recs, delivered)
}

fn collect(recs: Vec<(Recorder<MoshClient>, Recorder<MoshServer>)>, delivered: u64) -> Run {
    let mut run = Run {
        clients: Vec::new(),
        servers: Vec::new(),
        screens: Vec::new(),
        delivered,
    };
    for (client, server) in recs {
        run.screens
            .push(client.inner.server_frame().row_text(0).to_string());
        run.clients.push(client.log);
        run.servers.push(server.log);
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random session counts, shard counts, and typing interleavings:
    /// sharded transcripts are byte-identical to the 1-thread hub, with
    /// every client NAT-roamed onto one address mid-stream and the
    /// same-address sessions spread across different shards.
    #[test]
    fn sharded_transcripts_equal_single_threaded_hub(
        seed in any::<u64>(),
        texts in proptest::collection::vec("[a-z]{1,6}", 2..5),
        shards in 2usize..5,
        roam_after in 1usize..4,
    ) {
        let reference = single_threaded_run(&texts, seed, roam_after);
        let sharded = sharded_run(&texts, seed, roam_after, shards);

        for (i, text) in texts.iter().enumerate() {
            prop_assert_eq!(
                &sharded.clients[i], &reference.clients[i],
                "user {} client transcript diverged under {} shards", i, shards
            );
            prop_assert_eq!(
                &sharded.servers[i], &reference.servers[i],
                "user {} server transcript diverged under {} shards", i, shards
            );
            prop_assert_eq!(&sharded.screens[i], &reference.screens[i]);
            // The session genuinely did something after the roam.
            let expected = format!("$ {text}");
            prop_assert_eq!(sharded.screens[i].as_str(), expected.as_str());
        }
        prop_assert_eq!(sharded.delivered, reference.delivered);

        // Sessions roamed onto ONE address really do live on different
        // shards (round-robin accept: user 0 on shard 0, user 1 on 1).
        let mut hub = ShardedHub::with_shards(shards, SimPoller::new);
        let a = hub.add_session(world(0, seed));
        let b = hub.add_session(world(1, seed));
        prop_assert_ne!(hub.location(a).0, hub.location(b).0);
    }
}

/// Sharded scheduling is observably identical to a dedicated
/// [`SessionLoop`] per session, not just to the single-threaded hub —
/// the full chain pinned on a fixed case with every shard count.
#[test]
fn sharded_hub_matches_dedicated_loops_byte_for_byte() {
    let texts = vec!["hello".to_string(), "world".to_string(), "mosh".to_string()];
    let reference = single_threaded_run(&texts, 77, 2);
    for shards in [1usize, 2, 4] {
        let sharded = sharded_run(&texts, 77, 2, shards);
        for i in 0..texts.len() {
            assert_eq!(
                sharded.clients[i], reference.clients[i],
                "user {i} diverged at {shards} shards"
            );
            assert_eq!(sharded.servers[i], reference.servers[i]);
        }
    }

    // And the reference itself equals dedicated per-session loops.
    for (i, text) in texts.iter().enumerate() {
        let mut sl = SessionLoop::new(world(i, 77));
        let (mut client, mut server) = endpoints(i);
        let mut addr = client_addr(i);
        let mut now = 0u64;
        for step in 0..=text.len() {
            if step == 2 {
                addr = NAT;
            }
            now += 137;
            sl.pump_until(
                &mut [Party::new(addr, &mut client), Party::new(S, &mut server)],
                now,
            );
            if let Some(b) = text.as_bytes().get(step) {
                client.inner.keystroke(now, &[*b]);
            }
        }
        now += 8_000;
        sl.pump_until(
            &mut [Party::new(addr, &mut client), Party::new(S, &mut server)],
            now,
        );
        assert_eq!(
            client.log, reference.clients[i],
            "user {i}: hub diverged from a dedicated loop"
        );
        assert_eq!(server.log, reference.servers[i]);
    }
}

/// The live path: sessions spread over shards behind ONE UDP socket,
/// fed by the distributor, with unclaimed wires fanned out across
/// shards by bounce — and never a foreign datagram accepted.
#[test]
fn shards_share_one_socket_via_distributor() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const N: usize = 6;
    const SHARDS: usize = 3;
    let socket = std::net::UdpSocket::bind("127.0.0.1:0").expect("server socket");
    let server_addr = mosh::net::channel::addr_from_socket(socket.local_addr().unwrap());
    let (mut hub, mut dist) = ShardedHub::over_distributor(socket, SHARDS).expect("distributor");

    let mut sids = Vec::new();
    let mut servers: Vec<MoshServer> = Vec::new();
    for i in 0..N {
        sids.push(hub.add_distributed_session());
        servers.push(MoshServer::new(key(i), Box::new(LineShell::new())));
    }
    // Round-robin accept really spread the sessions over every shard.
    let shards_used: std::collections::HashSet<usize> =
        sids.iter().map(|sid| hub.location(*sid).0).collect();
    assert_eq!(shards_used.len(), SHARDS);

    let done = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for i in 0..N {
        let done = done.clone();
        let key = key(i);
        clients.push(std::thread::spawn(move || {
            let channel = UdpChannel::bind("127.0.0.1:0").expect("client socket");
            let addr = channel.local_addr();
            let mut client = MoshClient::new(key, server_addr, 80, 24, DisplayPreference::Never);
            let mut sl = SessionLoop::new(channel);
            let start = std::time::Instant::now();
            let expected = format!("$ {}", (b'a' + i as u8) as char);
            let mut typed = false;
            loop {
                assert!(
                    start.elapsed().as_secs() < 60,
                    "client {i} timed out waiting for {expected:?} (screen: {:?})",
                    client.server_frame().row_text(0)
                );
                let t = sl.now() + 5;
                sl.pump_until(&mut [Party::new(addr, &mut client)], t);
                let row = client.server_frame().row_text(0);
                if row == "$" && !typed {
                    typed = true;
                    client.keystroke(sl.now(), &[b'a' + i as u8]);
                } else if row == expected {
                    break;
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            (i, client.server_frame().row_text(0))
        }));
    }

    // Shard worker threads pump their sessions while the calling thread
    // seats the distributor — one socket, SHARDS event loops.
    let start = std::time::Instant::now();
    while done.load(Ordering::SeqCst) < N {
        assert!(start.elapsed().as_secs() < 90, "sharded smoke timed out");
        let target = hub.now(sids[0]) + 10;
        let mut leases: Vec<[Party<'_>; 1]> = servers
            .iter_mut()
            .map(|s| [Party::new(server_addr, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump_with(&mut sessions, || dist.pump(10));
    }

    for c in clients {
        let (i, row) = c.join().expect("client thread");
        assert_eq!(row, format!("$ {}", (b'a' + i as u8) as char));
    }
    // Each session echoed exactly its own client's keystroke and learned
    // that client's real socket address; a misroute would be rejected by
    // the endpoint's transport and counted.
    let mut targets = std::collections::HashSet::new();
    for (i, server) in servers.iter().enumerate() {
        assert_eq!(
            server.frame().row_text(0),
            format!("$ {}", (b'a' + i as u8) as char),
            "server {i} screen"
        );
        let target = server.target().expect("server learned a client");
        assert!(targets.insert(target), "distinct client per session");
        assert_eq!(
            server.transport_stats().datagrams_rejected,
            0,
            "session {i} was never fed a foreign datagram"
        );
    }
    let stats = hub.stats();
    assert!(stats.delivered > 0, "real traffic flowed: {stats:?}");
    assert!(
        dist.stats().routed > 0,
        "the distributor carried the socket: {:?}",
        dist.stats()
    );
}

/// The one-session-per-shard regression bar: a shard holding exactly one
/// session behind the shared socket must still *bounce* a foreign
/// client's datagrams onward (cross-shard authentication fan-out), never
/// swallow them into its lone endpoint. Every client here binds a source
/// port that hashes to the *other* shard, so its hello deterministically
/// lands wrong first — without the bounce, these clients are permanently
/// blackholed (the owning shard never hears them, so never replies, so
/// no hint is ever learned).
#[test]
fn one_session_per_shard_bounces_wrong_hash_clients() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const SHARDS: usize = 2;
    let socket = std::net::UdpSocket::bind("127.0.0.1:0").expect("server socket");
    let server_addr = mosh::net::channel::addr_from_socket(socket.local_addr().unwrap());
    let (mut hub, mut dist) = ShardedHub::over_distributor(socket, SHARDS).expect("distributor");

    let mut sids = Vec::new();
    let mut servers: Vec<MoshServer> = Vec::new();
    for i in 0..SHARDS {
        sids.push(hub.add_distributed_session());
        servers.push(MoshServer::new(key(i), Box::new(LineShell::new())));
        // Round-robin accept: session i owns shard i, alone.
        assert_eq!(hub.location(sids[i]).0, i);
    }

    let done = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for i in 0..SHARDS {
        let done = done.clone();
        let key = key(i);
        clients.push(std::thread::spawn(move || {
            // Rebind until the source port hashes to the wrong shard —
            // the distributor's stable fallback is port % shards.
            let channel = loop {
                let ch = UdpChannel::bind("127.0.0.1:0").expect("client socket");
                if (ch.local_addr().port as usize) % SHARDS == (i + 1) % SHARDS {
                    break ch;
                }
            };
            let addr = channel.local_addr();
            let mut client = MoshClient::new(key, server_addr, 80, 24, DisplayPreference::Never);
            let mut sl = SessionLoop::new(channel);
            let start = std::time::Instant::now();
            let expected = format!("$ {}", (b'a' + i as u8) as char);
            let mut typed = false;
            loop {
                assert!(
                    start.elapsed().as_secs() < 60,
                    "client {i} blackholed by the wrong shard (screen: {:?})",
                    client.server_frame().row_text(0)
                );
                let t = sl.now() + 5;
                sl.pump_until(&mut [Party::new(addr, &mut client)], t);
                let row = client.server_frame().row_text(0);
                if row == "$" && !typed {
                    typed = true;
                    client.keystroke(sl.now(), &[b'a' + i as u8]);
                } else if row == expected {
                    break;
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            i
        }));
    }

    let start = std::time::Instant::now();
    while done.load(Ordering::SeqCst) < SHARDS {
        assert!(start.elapsed().as_secs() < 90, "bounce smoke timed out");
        let target = hub.now(sids[0]) + 10;
        let mut leases: Vec<[Party<'_>; 1]> = servers
            .iter_mut()
            .map(|s| [Party::new(server_addr, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump_with(&mut sessions, || dist.pump(10));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // Every session served exactly its own client, and the wires that
    // landed on the wrong lone-session shard were bounced, not eaten.
    for (i, server) in servers.iter().enumerate() {
        assert_eq!(
            server.frame().row_text(0),
            format!("$ {}", (b'a' + i as u8) as char),
            "server {i} screen"
        );
        assert_eq!(
            server.transport_stats().datagrams_rejected,
            0,
            "session {i} was never fed a foreign datagram"
        );
    }
    let stats = hub.stats();
    assert!(
        stats.bounced >= SHARDS as u64,
        "each client's first hello was bounced off the wrong shard: {stats:?}"
    );
    assert!(
        dist.stats().bounced >= SHARDS as u64,
        "the distributor forwarded the bounces: {:?}",
        dist.stats()
    );
    assert_eq!(stats.dropped, 0, "no datagram was swallowed: {stats:?}");

    // Retiring the sessions evicts their distributor hints, so a
    // long-running front end's hint map tracks live sessions only.
    assert!(dist.hint_count() > 0, "replies taught source hints");
    for sid in sids {
        hub.remove_session(sid);
    }
    assert_eq!(hub.session_count(), 0);
    assert_eq!(dist.hint_count(), 0, "removed sessions' hints evicted");
}
