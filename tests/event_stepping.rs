//! Event-driven stepping is *schedule-identical* to the seed's 1 ms loop.
//!
//! `SessionLoop` steps virtual time by `min(next_wakeup, next_event_time)`
//! instead of polling every millisecond. That is only sound if skipping
//! the quiet milliseconds changes nothing: every datagram must be sent
//! and received at exactly the same virtual instant, with exactly the
//! same bytes (same RNG draws, same chaff, same fragmentation). This
//! test pits the two drivers against each other over a lossy, jittery
//! link and demands **byte-identical wire transcripts** on both sides.

use mosh::core::{
    Endpoint, HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionEvent,
    SessionId, SessionLoop,
};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Poller, Side, SimChannel, SimPoller};
use mosh::prediction::DisplayPreference;

/// One wire-level action: (virtual time, 's'end or 'r'eceive, peer, bytes).
type Transcript = Vec<(u64, u8, Addr, Vec<u8>)>;

/// Records every datagram an endpoint sends or receives, verbatim.
struct Recorder<E> {
    inner: E,
    log: Transcript,
}

impl<E> Recorder<E> {
    fn new(inner: E) -> Self {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }
}

impl<E: Endpoint> Endpoint for Recorder<E> {
    fn receive(&mut self, now: u64, from: Addr, wire: &[u8], events: &mut Vec<SessionEvent>) {
        self.log.push((now, b'r', from, wire.to_vec()));
        self.inner.receive(now, from, wire, events);
    }

    fn tick(&mut self, now: u64, out: &mut Vec<(Addr, Vec<u8>)>, events: &mut Vec<SessionEvent>) {
        let start = out.len();
        self.inner.tick(now, out, events);
        for (to, wire) in &out[start..] {
            self.log.push((now, b's', *to, wire.clone()));
        }
    }

    fn next_wakeup(&self, now: u64) -> u64 {
        self.inner.next_wakeup(now)
    }

    fn last_heard(&self) -> Option<u64> {
        self.inner.last_heard()
    }

    fn authenticates(&self, wire: &[u8]) -> bool {
        self.inner.authenticates(wire)
    }

    fn try_open(&mut self, wire: &[u8]) -> Option<mosh::ssp::datagram::Opened> {
        self.inner.try_open(wire)
    }

    fn receive_opened(
        &mut self,
        now: u64,
        from: Addr,
        opened: mosh::ssp::datagram::Opened,
        events: &mut Vec<SessionEvent>,
    ) {
        // Only reachable through an ambiguous-address demux; the suites
        // here give every endpoint a unique receive address, so raw-wire
        // `receive` keeps doing the transcript logging.
        self.inner.receive_opened(now, from, opened, events);
    }
}

const C: Addr = Addr::new(1, 1000);
const S: Addr = Addr::new(2, 60001);
const END: u64 = 25_000;

fn net(seed: u64) -> Network {
    // Loss + jitter + a rate limit: retransmissions, reordering windows,
    // and queueing all get exercised (every RNG draw must line up).
    let link = LinkConfig {
        delay_ms: 80,
        jitter_ms: 25,
        loss: 0.12,
        rate_bytes_per_ms: Some(200),
        ..LinkConfig::lan()
    };
    let mut net = Network::new(link.clone(), link, seed);
    net.register(C, Side::Client);
    net.register(S, Side::Server);
    net
}

fn endpoints(seed: u64) -> (MoshClient, MoshServer) {
    let key = Base64Key::from_bytes([seed as u8; 16]);
    (
        MoshClient::new(key.clone(), S, 80, 24, DisplayPreference::Adaptive),
        MoshServer::new(key, Box::new(LineShell::new())),
    )
}

/// The user script: (time, keystroke bytes). Includes a flood (`yes`) to
/// exercise the application-poll wakeup path, and its interrupt.
fn script() -> Vec<(u64, Vec<u8>)> {
    let mut keys: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut t = 1000;
    for &b in b"echo hello\r" {
        keys.push((t, vec![b]));
        t += 137;
    }
    for &b in b"yes\r" {
        keys.push((t + 400, vec![b]));
        t += 211;
    }
    keys.push((t + 2500, vec![0x03])); // ^C stops the flood
    keys.push((t + 3100, b"ls\r".to_vec()));
    keys
}

/// The seed's historical driver: tick both sides every millisecond,
/// advance the emulator by one, drain mailboxes. Kept verbatim as the
/// reference semantics for the event-driven loop.
fn reference_run(seed: u64) -> (Transcript, Transcript, String) {
    let mut net = net(seed);
    let (mut client, mut server) = endpoints(seed);
    let mut client_log: Transcript = Vec::new();
    let mut server_log: Transcript = Vec::new();
    let keys = script();
    let mut next_key = 0;

    let mut now = 0u64;
    while now < END {
        while next_key < keys.len() && keys[next_key].0 <= now {
            client.keystroke(now, &keys[next_key].1);
            next_key += 1;
        }
        for (to, w) in MoshClient::tick(&mut client, now) {
            client_log.push((now, b's', to, w.clone()));
            net.send(C, to, w);
        }
        for (to, w) in MoshServer::tick(&mut server, now) {
            server_log.push((now, b's', to, w.clone()));
            net.send(S, to, w);
        }
        now += 1;
        net.advance_to(now);
        while let Some(dg) = net.recv(S) {
            server_log.push((now, b'r', dg.from, dg.payload.clone()));
            MoshServer::receive(&mut server, now, dg.from, &dg.payload);
        }
        while let Some(dg) = net.recv(C) {
            client_log.push((now, b'r', dg.from, dg.payload.clone()));
            MoshClient::receive(&mut client, now, &dg.payload);
        }
    }
    let screen = client.server_frame().to_text();
    (client_log, server_log, screen)
}

/// The same session driven by `SessionLoop` over the `Channel` seam.
fn event_driven_run(seed: u64) -> (Transcript, Transcript, String) {
    let (client, server) = endpoints(seed);
    let mut client = Recorder::new(client);
    let mut server = Recorder::new(server);
    let mut sl = SessionLoop::new(SimChannel::new(net(seed)));

    for (at, bytes) in script() {
        sl.pump_until(
            &mut [Party::new(C, &mut client), Party::new(S, &mut server)],
            at,
        );
        client.inner.keystroke(at, &bytes);
    }
    sl.pump_until(
        &mut [Party::new(C, &mut client), Party::new(S, &mut server)],
        END,
    );
    let screen = client.inner.server_frame().to_text();
    (client.log, server.log, screen)
}

#[test]
fn wire_schedule_is_byte_identical_to_the_1ms_loop() {
    for seed in [7u64, 42, 1234] {
        let (rc, rs, rscreen) = reference_run(seed);
        let (ec, es, escreen) = event_driven_run(seed);
        // Compare counts first for a readable failure, then every byte.
        assert_eq!(
            rc.len(),
            ec.len(),
            "seed {seed}: client wire-action count diverged"
        );
        assert_eq!(
            rs.len(),
            es.len(),
            "seed {seed}: server wire-action count diverged"
        );
        for (i, (a, b)) in rc.iter().zip(ec.iter()).enumerate() {
            assert_eq!(
                a, b,
                "seed {seed}: client wire action #{i} diverged \
                 (reference vs event-driven)"
            );
        }
        for (i, (a, b)) in rs.iter().zip(es.iter()).enumerate() {
            assert_eq!(
                a, b,
                "seed {seed}: server wire action #{i} diverged \
                 (reference vs event-driven)"
            );
        }
        assert_eq!(rscreen, escreen, "seed {seed}: final screens diverged");
        // Sanity: the session actually did things (handshake, echo
        // frames, a flood, retransmissions over 12% loss, heartbeats).
        assert!(
            rc.len() > 30,
            "seed {seed}: session too quiet to prove anything ({} actions)",
            rc.len()
        );
        assert!(
            rscreen.contains('y') && rscreen.contains("Makefile"),
            "seed {seed}: flood and post-interrupt `ls` both reached the client"
        );
    }
}

/// The same sessions driven by one multi-session `ServerHub` instead of
/// dedicated `SessionLoop`s. Each session lives in its own emulated
/// world; the hub interleaves them through one timer wheel.
fn hub_run(seeds: &[u64]) -> Vec<(Transcript, Transcript, String)> {
    let mut hub = ServerHub::new(SimPoller::new());
    let mut sids: Vec<SessionId> = Vec::new();
    let mut recs: Vec<(Recorder<MoshClient>, Recorder<MoshServer>)> = Vec::new();
    for &seed in seeds {
        let tok = hub.poller_mut().add(SimChannel::new(net(seed)));
        sids.push(hub.add_session(tok));
        let (client, server) = endpoints(seed);
        recs.push((Recorder::new(client), Recorder::new(server)));
    }

    let pump_all = |hub: &mut ServerHub<SimPoller>,
                    recs: &mut Vec<(Recorder<MoshClient>, Recorder<MoshServer>)>,
                    target: u64| {
        let mut leases: Vec<[Party<'_>; 2]> = recs
            .iter_mut()
            .map(|(c, s)| [Party::new(C, c), Party::new(S, s)])
            .collect();
        let mut sessions: Vec<HubSession<'_, '_>> = leases
            .iter_mut()
            .zip(sids.iter())
            .map(|(parties, sid)| HubSession::new(*sid, parties, target))
            .collect();
        hub.pump(&mut sessions);
    };

    for (at, bytes) in script() {
        pump_all(&mut hub, &mut recs, at);
        for (client, _) in recs.iter_mut() {
            client.inner.keystroke(at, &bytes);
        }
    }
    pump_all(&mut hub, &mut recs, END);

    recs.into_iter()
        .map(|(c, s)| {
            let screen = c.inner.server_frame().to_text();
            (c.log, s.log, screen)
        })
        .collect()
}

/// The multi-session acceptance bar: a hub driving N sessions produces
/// byte-identical per-session wire transcripts to N dedicated
/// `SessionLoop`s (which are themselves pinned to the 1 ms reference
/// above) — multiplexing changes *nothing* about any single session.
#[test]
fn hub_matches_dedicated_loops_byte_for_byte() {
    let seeds = [7u64, 42, 1234];
    let hubbed = hub_run(&seeds);
    for (i, &seed) in seeds.iter().enumerate() {
        let (dc, ds, dscreen) = event_driven_run(seed);
        let (hc, hs, hscreen) = &hubbed[i];
        assert_eq!(
            dc.len(),
            hc.len(),
            "seed {seed}: client wire-action count diverged under the hub"
        );
        assert_eq!(
            ds.len(),
            hs.len(),
            "seed {seed}: server wire-action count diverged under the hub"
        );
        for (n, (a, b)) in dc.iter().zip(hc.iter()).enumerate() {
            assert_eq!(
                a, b,
                "seed {seed}: client wire action #{n} diverged \
                 (dedicated loop vs hub)"
            );
        }
        for (n, (a, b)) in ds.iter().zip(hs.iter()).enumerate() {
            assert_eq!(
                a, b,
                "seed {seed}: server wire action #{n} diverged \
                 (dedicated loop vs hub)"
            );
        }
        assert_eq!(&dscreen, hscreen, "seed {seed}: final screens diverged");
        assert!(
            dc.len() > 30,
            "seed {seed}: session too quiet to prove anything"
        );
    }
}

#[test]
fn event_driven_loop_takes_far_fewer_steps() {
    // Not just correct — the point of the redesign. Count emulator
    // advances by instrumenting next_event_time-driven stepping: an idle
    // 25 s session visits well under 1% of the 25 000 instants the
    // reference loop grinds through. We proxy "steps" by wire actions
    // plus timer wakeups, which bounds pump iterations.
    let (client, server) = endpoints(7);
    let mut client = Recorder::new(client);
    let mut server = Recorder::new(server);
    let mut sl = SessionLoop::new(SimChannel::new(net(7)));
    // Fully idle session (no keystrokes): only handshake + heartbeats.
    sl.pump_until(
        &mut [Party::new(C, &mut client), Party::new(S, &mut server)],
        END,
    );
    let actions = client.log.len() + server.log.len();
    assert!(
        actions < 400,
        "idle 25 s session produced {actions} wire actions; \
         event stepping should make this sparse"
    );
}
