//! # mosh-rs — a Rust reproduction of Mosh (the mobile shell)
//!
//! This crate re-exports the full system described in *Mosh: An
//! Interactive Remote Shell for Mobile Clients* (Winstein & Balakrishnan,
//! USENIX ATC 2012):
//!
//! * [`ssp`] — the State Synchronization Protocol: encrypted, roaming,
//!   diff-based object synchronization over UDP datagrams (paper §2).
//! * [`terminal`] — the ECMA-48 character-cell emulator and frame differ
//!   (paper §3.1).
//! * [`prediction`] — speculative local echo with epochs and server echo
//!   acks (paper §3.2).
//! * [`core`] — client/server sessions and the hosted applications.
//! * [`net`] — the discrete-event network emulator used for evaluation.
//! * [`tcp`] / [`ssh`] — the TCP substrate and SSH baseline.
//! * [`trace`] — six-user keystroke traces, replay, and statistics (§4).
//! * [`crypto`] — AES-128-OCB authenticated encryption (§2.2).
//!
//! The I/O seam is the [`net::Channel`] trait: the same `MoshClient` /
//! `MoshServer` state machines run over [`net::SimChannel`] (the
//! discrete-event emulator, virtual time) and [`net::UdpChannel`] (a real
//! socket, wall-clock time) — the paper's §2 design claim, executable.
//! A [`core::SessionLoop`] drives any set of endpoints over either
//! substrate, stepping straight to the next timer or delivery instead of
//! polling every millisecond, and reports [`core::SessionEvent`]s
//! (`FrameAdvanced`, `Roamed`, `PeerTimeout`, ...).
//!
//! # Quickstart
//!
//! ```
//! use mosh::core::{LineShell, MoshClient, MoshServer, Party, SessionLoop};
//! use mosh::crypto::Base64Key;
//! use mosh::net::{Addr, LinkConfig, Network, Side, SimChannel};
//! use mosh::prediction::DisplayPreference;
//!
//! // A shared key, exactly like `mosh-server` prints during bootstrap.
//! let key = Base64Key::random();
//!
//! // An emulated mobile network path. (Swap `SimChannel` for
//! // `UdpChannel::bind("127.0.0.1:0")` and the same session runs over
//! // real sockets — see `examples/udp_pair.rs`.)
//! let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 7);
//! let (c, s) = (Addr::new(1, 1000), Addr::new(2, 60001));
//! net.register(c, Side::Client);
//! net.register(s, Side::Server);
//!
//! let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
//! let mut server = MoshServer::new(key, Box::new(LineShell::new()));
//!
//! // Run both endpoints for half a virtual second: the loop steps from
//! // event to event (keystrokes, frames, acks), not millisecond to
//! // millisecond, and the schedule is identical either way.
//! let mut session = SessionLoop::new(SimChannel::new(net));
//! let events = session.pump_until(
//!     &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
//!     500,
//! );
//! assert_eq!(client.server_frame().row_text(0), "$");
//! assert!(!events.is_empty(), "the prompt arrived in a frame event");
//!
//! // Type a keystroke, then let the session settle.
//! client.keystroke(session.now(), b"l");
//! session.pump_until(
//!     &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
//!     1000,
//! );
//! assert_eq!(client.server_frame().row_text(0), "$ l");
//! ```

pub use mosh_core as core;
pub use mosh_crypto as crypto;
pub use mosh_net as net;
pub use mosh_prediction as prediction;
pub use mosh_ssh as ssh;
pub use mosh_ssp as ssp;
pub use mosh_states as states;
pub use mosh_tcp as tcp;
pub use mosh_terminal as terminal;
pub use mosh_trace as trace;
