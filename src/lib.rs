//! # mosh-rs — a Rust reproduction of Mosh (the mobile shell)
//!
//! This crate re-exports the full system described in *Mosh: An
//! Interactive Remote Shell for Mobile Clients* (Winstein & Balakrishnan,
//! USENIX ATC 2012):
//!
//! * [`ssp`] — the State Synchronization Protocol: encrypted, roaming,
//!   diff-based object synchronization over UDP datagrams (paper §2).
//! * [`terminal`] — the ECMA-48 character-cell emulator and frame differ
//!   (paper §3.1).
//! * [`prediction`] — speculative local echo with epochs and server echo
//!   acks (paper §3.2).
//! * [`core`] — client/server sessions and the hosted applications.
//! * [`net`] — the discrete-event network emulator used for evaluation.
//! * [`tcp`] / [`ssh`] — the TCP substrate and SSH baseline.
//! * [`trace`] — six-user keystroke traces, replay, and statistics (§4).
//! * [`crypto`] — AES-128-OCB authenticated encryption (§2.2).
//!
//! # Quickstart
//!
//! ```
//! use mosh::core::{LineShell, MoshClient, MoshServer};
//! use mosh::crypto::Base64Key;
//! use mosh::net::{Addr, LinkConfig, Network, Side};
//! use mosh::prediction::DisplayPreference;
//!
//! // A shared key, exactly like `mosh-server` prints during bootstrap.
//! let key = Base64Key::random();
//!
//! // An emulated mobile network path.
//! let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 7);
//! let (c, s) = (Addr::new(1, 1000), Addr::new(2, 60001));
//! net.register(c, Side::Client);
//! net.register(s, Side::Server);
//!
//! let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
//! let mut server = MoshServer::new(key, Box::new(LineShell::new()));
//!
//! // Run both endpoints for half a virtual second.
//! for now in 0..500 {
//!     for (to, wire) in client.tick(now) {
//!         net.send(c, to, wire);
//!     }
//!     for (to, wire) in server.tick(now) {
//!         net.send(s, to, wire);
//!     }
//!     net.advance_to(now + 1);
//!     while let Some(dg) = net.recv(s) {
//!         server.receive(now + 1, dg.from, &dg.payload);
//!     }
//!     while let Some(dg) = net.recv(c) {
//!         client.receive(now + 1, &dg.payload);
//!     }
//! }
//! assert_eq!(client.server_frame().row_text(0), "$");
//! ```

pub use mosh_core as core;
pub use mosh_crypto as crypto;
pub use mosh_net as net;
pub use mosh_prediction as prediction;
pub use mosh_ssh as ssh;
pub use mosh_ssp as ssp;
pub use mosh_states as states;
pub use mosh_tcp as tcp;
pub use mosh_terminal as terminal;
pub use mosh_trace as trace;
