//! Roaming: the client hops networks mid-session and nothing breaks.
//!
//! Paper §2.2: "client roaming happens automatically, without the client's
//! timing out or even knowing that it has changed public IP addresses."
//! Under the [`SessionLoop`] API, roaming on the simulator is literally
//! one assignment — the client party's address changes between pumps —
//! and the driver reports the server's re-target as a `Roamed` event.
//!
//! Run with `cargo run --example roaming`.

use mosh::core::{LineShell, MoshClient, MoshServer, Party, SessionEvent, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side, SimChannel};
use mosh::prediction::DisplayPreference;

fn main() {
    let key = Base64Key::random();
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 3);
    let wifi = Addr::new(10, 1000); // coffee-shop Wi-Fi
    let lte = Addr::new(99, 40512); // cellular, after walking out the door
    let server = Addr::new(2, 60001);
    net.register(wifi, Side::Client);
    net.register(lte, Side::Client);
    net.register(server, Side::Server);

    let mut client = MoshClient::new(key.clone(), server, 80, 24, DisplayPreference::Adaptive);
    let mut srv = MoshServer::new(key, Box::new(LineShell::new()));
    let mut session = SessionLoop::new(SimChannel::new(net));

    // On Wi-Fi: connect and type 'a'.
    session.pump_until(
        &mut [Party::new(wifi, &mut client), Party::new(server, &mut srv)],
        1000,
    );
    client.keystroke(1000, b"a");
    println!("t=1000  typed 'a' from {wifi}");
    session.pump_until(
        &mut [Party::new(wifi, &mut client), Party::new(server, &mut srv)],
        2000,
    );

    // The IP address changes; no reconnect, no API call — the client
    // simply sends from its new address from now on.
    println!("t=2000  *** roamed: now sending from {lte} ***");
    session.pump_until(
        &mut [Party::new(lte, &mut client), Party::new(server, &mut srv)],
        2100,
    );
    client.keystroke(2100, b"b");
    println!("t=2100  typed 'b' from {lte}");
    let events = session.pump_until(
        &mut [Party::new(lte, &mut client), Party::new(server, &mut srv)],
        4000,
    );

    for ev in &events {
        if let SessionEvent::Roamed { at, to } = ev {
            println!("t={at}  server re-targeted to {to}");
        }
    }
    println!("\nserver now targets: {}", srv.target().expect("connected"));
    println!("screen: {:?}", client.server_frame().row_text(0));
    assert_eq!(srv.target(), Some(lte));
    assert!(events
        .iter()
        .any(|e| matches!(e, SessionEvent::Roamed { to, .. } if *to == lte)));
    assert_eq!(client.server_frame().row_text(0), "$ ab");
    println!("both keystrokes arrived; the session never noticed the move.");
}
