//! Roaming: the client hops networks mid-session and nothing breaks.
//!
//! Paper §2.2: "client roaming happens automatically, without the client's
//! timing out or even knowing that it has changed public IP addresses."
//!
//! Run with `cargo run --example roaming`.

use mosh::core::{LineShell, MoshClient, MoshServer};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side};
use mosh::prediction::DisplayPreference;

fn main() {
    let key = Base64Key::random();
    let mut net = Network::new(LinkConfig::lan(), LinkConfig::lan(), 3);
    let wifi = Addr::new(10, 1000); // coffee-shop Wi-Fi
    let lte = Addr::new(99, 40512); // cellular, after walking out the door
    let server = Addr::new(2, 60001);
    net.register(wifi, Side::Client);
    net.register(lte, Side::Client);
    net.register(server, Side::Server);

    let mut client = MoshClient::new(key.clone(), server, 80, 24, DisplayPreference::Adaptive);
    let mut srv = MoshServer::new(key, Box::new(LineShell::new()));

    let mut from = wifi;
    for now in 0..4000u64 {
        match now {
            1000 => {
                client.keystroke(now, b"a");
                println!("t=1000  typed 'a' from {from}");
            }
            2000 => {
                from = lte; // The IP address changes; no reconnect, no API call.
                println!("t=2000  *** roamed: now sending from {from} ***");
            }
            2100 => {
                client.keystroke(now, b"b");
                println!("t=2100  typed 'b' from {from}");
            }
            _ => {}
        }
        for (to, wire) in client.tick(now) {
            net.send(from, to, wire);
        }
        for (to, wire) in srv.tick(now) {
            net.send(server, to, wire);
        }
        net.advance_to(now + 1);
        while let Some(dg) = net.recv(server) {
            srv.receive(now + 1, dg.from, &dg.payload);
        }
        for addr in [wifi, lte] {
            while let Some(dg) = net.recv(addr) {
                client.receive(now + 1, &dg.payload);
            }
        }
    }

    println!("\nserver now targets: {}", srv.target().expect("connected"));
    println!("screen: {:?}", client.server_frame().row_text(0));
    assert_eq!(srv.target(), Some(lte));
    assert_eq!(client.server_frame().row_text(0), "$ ab");
    println!("both keystrokes arrived; the session never noticed the move.");
}
