//! A full-screen editor over a terrible network: 10% loss, 300 ms RTT.
//!
//! Mosh keeps typing responsive (speculative echo) and the screen
//! converges to the authoritative server state despite the loss.
//!
//! Run with `cargo run --example lossy_editor`.

use mosh::core::{Editor, MoshClient, MoshServer};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side};
use mosh::prediction::DisplayPreference;

fn main() {
    let key = Base64Key::random();
    let link = LinkConfig {
        delay_ms: 150,
        jitter_ms: 30,
        loss: 0.10,
        ..LinkConfig::lan()
    };
    let mut net = Network::new(link.clone(), link, 99);
    let c = Addr::new(1, 1000);
    let s = Addr::new(2, 60001);
    net.register(c, Side::Client);
    net.register(s, Side::Server);

    let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
    let mut server = MoshServer::new(key, Box::new(Editor::new()));

    // Type a sentence into the editor with realistic timing.
    let text = b"speculation makes remote editing feel local ";
    let mut instant = 0u32;
    let mut now = 0u64;
    let drive = |client: &mut MoshClient,
                 server: &mut MoshServer,
                 net: &mut Network,
                 now: &mut u64,
                 until: u64| {
        while *now < until {
            for (to, wire) in client.tick(*now) {
                net.send(c, to, wire);
            }
            for (to, wire) in server.tick(*now) {
                net.send(s, to, wire);
            }
            net.advance_to(*now + 1);
            *now += 1;
            while let Some(dg) = net.recv(s) {
                server.receive(*now, dg.from, &dg.payload);
            }
            while let Some(dg) = net.recv(c) {
                client.receive(*now, &dg.payload);
            }
        }
    };

    drive(&mut client, &mut server, &mut net, &mut now, 2000);
    for &b in text {
        if client.keystroke(now, &[b]) {
            instant += 1;
        }
        let until = now + 140;
        drive(&mut client, &mut server, &mut net, &mut now, until);
    }
    let until = now + 5000;
    drive(&mut client, &mut server, &mut net, &mut now, until);

    let display = client.display();
    println!("editor screen after typing over a 10%-loss, 300 ms RTT link:");
    for row in 0..4 {
        println!("  {}", display.row_text(row));
    }
    println!("  ...");
    println!("  {}", display.row_text(23));
    println!(
        "\n{instant}/{} keystrokes echoed instantly ({}%), mispredictions repaired: {}",
        text.len(),
        100 * instant as usize / text.len(),
        client.prediction_stats().mispredicted
    );
    assert_eq!(client.display(), *client.server_frame(), "converged");
}
