//! A full-screen editor over a terrible network: 10% loss, 300 ms RTT.
//!
//! Mosh keeps typing responsive (speculative echo) and the screen
//! converges to the authoritative server state despite the loss.
//!
//! Run with `cargo run --example lossy_editor`.

use mosh::core::{Editor, MoshClient, MoshServer, Party, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side, SimChannel};
use mosh::prediction::DisplayPreference;

fn main() {
    let key = Base64Key::random();
    let link = LinkConfig {
        delay_ms: 150,
        jitter_ms: 30,
        loss: 0.10,
        ..LinkConfig::lan()
    };
    let mut net = Network::new(link.clone(), link, 99);
    let c = Addr::new(1, 1000);
    let s = Addr::new(2, 60001);
    net.register(c, Side::Client);
    net.register(s, Side::Server);

    let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
    let mut server = MoshServer::new(key, Box::new(Editor::new()));
    let mut session = SessionLoop::new(SimChannel::new(net));

    // Type a sentence into the editor with realistic timing.
    let text = b"speculation makes remote editing feel local ";
    let mut instant = 0u32;
    session.pump_until(
        &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
        2000,
    );
    for &b in text {
        if client.keystroke(session.now(), &[b]) {
            instant += 1;
        }
        let until = session.now() + 140;
        session.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            until,
        );
    }
    let until = session.now() + 5000;
    session.pump_until(
        &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
        until,
    );

    let display = client.display();
    println!("editor screen after typing over a 10%-loss, 300 ms RTT link:");
    for row in 0..4 {
        println!("  {}", display.row_text(row));
    }
    println!("  ...");
    println!("  {}", display.row_text(23));
    println!(
        "\n{instant}/{} keystrokes echoed instantly ({}%), mispredictions repaired: {}",
        text.len(),
        100 * instant as usize / text.len(),
        client.prediction_stats().mispredicted
    );
    assert_eq!(client.display(), *client.server_frame(), "converged");
}
