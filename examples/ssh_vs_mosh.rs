//! Side-by-side: the same keystrokes over SSH and Mosh on a 3G path.
//!
//! Run with `cargo run --release --example ssh_vs_mosh`.

use mosh::net::LinkConfig;
use mosh::prediction::DisplayPreference;
use mosh::trace::{replay_mosh, replay_ssh, small_trace, ReplayConfig};

fn main() {
    let trace = small_trace(150);
    let cfg = ReplayConfig {
        up: LinkConfig::evdo_uplink(),
        down: LinkConfig::evdo_downlink(),
        seed: 1,
        preference: DisplayPreference::Adaptive,
        mindelay: None,
        bulk_download: false,
        threads: 1,
    };
    println!("replaying 150 keystrokes over an emulated EV-DO (3G) path...\n");
    let mosh = replay_mosh(&trace, &cfg);
    let ssh = replay_ssh(&trace, &cfg);
    println!(
        "  SSH : median {:>6.0} ms   mean {:>6.0} ms",
        ssh.latencies.median(),
        ssh.latencies.mean()
    );
    println!(
        "  Mosh: median {:>6.0} ms   mean {:>6.0} ms   ({} of {} keystrokes instant)",
        mosh.latencies.median(),
        mosh.latencies.mean(),
        mosh.instant,
        mosh.measured
    );
}
