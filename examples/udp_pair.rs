//! The same state machine, unsimulated: client and server over real
//! 127.0.0.1 UDP sockets.
//!
//! Every other example runs under the discrete-event emulator. This one
//! proves the paper's §2 design claim — SSP is a pure state machine with
//! caller-supplied time — by running the *identical* `MoshClient` and
//! `MoshServer` over `UdpChannel`, where waits really block on the socket
//! and `now` is a monotonic wall clock. The server side runs the
//! production shape: a `ServerHub` over a `UdpPoller` — one event loop
//! that would serve hundreds of sessions exactly like this single one
//! (`tests/hub_sessions.rs` drives eight concurrent ones).
//!
//! The client types `echo hi` + ENTER; the demo succeeds once the echoed
//! command output has crossed the wire twice (keystrokes up, frames down).
//!
//! Run with `cargo run --example udp_pair`.

use mosh::core::{HubSession, LineShell, MoshClient, MoshServer, Party, ServerHub, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Poller, UdpChannel, UdpPoller};
use mosh::prediction::DisplayPreference;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let key = Base64Key::random();

    // "mosh-server" side: bind a real socket, print the bootstrap line.
    let server_channel = UdpChannel::bind("127.0.0.1:0").expect("bind server socket");
    let server_addr = server_channel.local_addr();
    println!("MOSH CONNECT {} {key}", server_addr.port);
    println!("server listening on {server_addr} (a real UDP socket)\n");

    let done = Arc::new(AtomicBool::new(false));
    let server_done = done.clone();
    let server_key = key.clone();
    let server_thread = std::thread::spawn(move || {
        let mut server = MoshServer::new(server_key, Box::new(LineShell::new()));
        let mut hub = ServerHub::new(UdpPoller::new());
        let tok = hub.poller_mut().add(server_channel);
        let sid = hub.add_session(tok);
        while !server_done.load(Ordering::Relaxed) {
            let t = hub.now(sid) + 50;
            let mut parties = [Party::new(server_addr, &mut server)];
            hub.pump(&mut [HubSession::new(sid, &mut parties, t)]);
        }
        server
    });

    // "mosh-client" side: its own socket, its own clock, its own loop.
    let client_channel = UdpChannel::bind("127.0.0.1:0").expect("bind client socket");
    let client_addr = client_channel.local_addr();
    let mut client = MoshClient::new(key, server_addr, 80, 24, DisplayPreference::Adaptive);
    let mut session = SessionLoop::new(client_channel);

    let pump = |session: &mut SessionLoop<UdpChannel>, client: &mut MoshClient, ms: u64| {
        let t = session.now() + ms;
        session.pump_until(&mut [Party::new(client_addr, client)], t);
    };

    // Wait for the server's prompt (a round trip over the real wire).
    let start = session.now();
    while client.server_frame().row_text(0) != "$" {
        pump(&mut session, &mut client, 20);
        assert!(session.now() < start + 10_000, "no prompt within 10 s");
    }
    println!("prompt arrived after {} ms", session.now() - start);

    // Type a command with human-ish timing.
    for &b in b"echo hi\r" {
        client.keystroke(session.now(), &[b]);
        pump(&mut session, &mut client, 25);
    }

    // The keystroke→echo round trip completes when the command output is
    // on the client's authoritative screen.
    let typed = session.now();
    while client.server_frame().row_text(1) != "hi" {
        pump(&mut session, &mut client, 20);
        assert!(session.now() < typed + 10_000, "no echo within 10 s");
    }
    println!(
        "echo round-trip complete after {} ms\n",
        session.now() - typed
    );

    println!("client screen (authoritative, via real UDP):");
    for row in 0..3 {
        println!("  {}", client.server_frame().row_text(row));
    }
    println!("\nclient SRTT over loopback: {:.1} ms", client.srtt());

    done.store(true, Ordering::Relaxed);
    let server = server_thread.join().expect("server thread");
    assert!(server.frame().to_text().contains("hi"), "server echoed");
    assert_eq!(
        server.target(),
        Some(client_addr),
        "server learned the client's address"
    );
    println!(
        "server targets {} — the address it learned from the wire.",
        client_addr
    );
}
