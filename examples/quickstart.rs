//! Quickstart: a complete Mosh session over an emulated 3G network.
//!
//! Run with `cargo run --example quickstart`.

use mosh::core::{LineShell, MoshClient, MoshServer};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side};
use mosh::prediction::DisplayPreference;

fn main() {
    let key = Base64Key::random();
    println!("MOSH CONNECT 60001 {key}\n");

    let mut net = Network::new(LinkConfig::evdo_uplink(), LinkConfig::evdo_downlink(), 7);
    let c = Addr::new(1, 1000);
    let s = Addr::new(2, 60001);
    net.register(c, Side::Client);
    net.register(s, Side::Server);

    let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
    let mut server = MoshServer::new(key, Box::new(LineShell::new()));

    // The user types `ls` and presses ENTER, with human timing.
    let script: &[(u64, &[u8])] = &[(2000, b"l"), (2210, b"s"), (2420, b"\r")];
    let mut si = 0;

    for now in 0..8000u64 {
        while si < script.len() && script[si].0 <= now {
            let shown = client.keystroke(now, script[si].1);
            println!(
                "t={now:>5} ms  typed {:?}  predicted instantly: {shown}",
                String::from_utf8_lossy(script[si].1)
            );
            si += 1;
        }
        for (to, wire) in client.tick(now) {
            net.send(c, to, wire);
        }
        for (to, wire) in server.tick(now) {
            net.send(s, to, wire);
        }
        net.advance_to(now + 1);
        while let Some(dg) = net.recv(s) {
            server.receive(now + 1, dg.from, &dg.payload);
        }
        while let Some(dg) = net.recv(c) {
            client.receive(now + 1, &dg.payload);
        }
    }

    println!("\nFinal screen as seen by the user (RTT ≈ 500 ms):");
    println!("┌{}┐", "─".repeat(40));
    let display = client.display();
    for row in 0..8 {
        println!(
            "│{:<40}│",
            display.row_text(row).chars().take(40).collect::<String>()
        );
    }
    println!("└{}┘", "─".repeat(40));
    println!("client SRTT estimate: {:.0} ms", client.srtt());
}
