//! Quickstart: a complete Mosh session over an emulated 3G network.
//!
//! Run with `cargo run --example quickstart`.

use mosh::core::{LineShell, MoshClient, MoshServer, Party, SessionLoop};
use mosh::crypto::Base64Key;
use mosh::net::{Addr, LinkConfig, Network, Side, SimChannel};
use mosh::prediction::DisplayPreference;

fn main() {
    let key = Base64Key::random();
    println!("MOSH CONNECT 60001 {key}\n");

    let mut net = Network::new(LinkConfig::evdo_uplink(), LinkConfig::evdo_downlink(), 7);
    let c = Addr::new(1, 1000);
    let s = Addr::new(2, 60001);
    net.register(c, Side::Client);
    net.register(s, Side::Server);

    let mut client = MoshClient::new(key.clone(), s, 80, 24, DisplayPreference::Adaptive);
    let mut server = MoshServer::new(key, Box::new(LineShell::new()));
    let mut session = SessionLoop::new(SimChannel::new(net));

    // The user types `ls` and presses ENTER, with human timing. The loop
    // steps straight from event to event: no per-millisecond polling.
    let script: &[(u64, &[u8])] = &[(2000, b"l"), (2210, b"s"), (2420, b"\r")];
    for (at, bytes) in script {
        session.pump_until(
            &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
            *at,
        );
        let shown = client.keystroke(*at, bytes);
        println!(
            "t={at:>5} ms  typed {:?}  predicted instantly: {shown}",
            String::from_utf8_lossy(bytes)
        );
    }
    session.pump_until(
        &mut [Party::new(c, &mut client), Party::new(s, &mut server)],
        8000,
    );

    println!("\nFinal screen as seen by the user (RTT ≈ 500 ms):");
    println!("┌{}┐", "─".repeat(40));
    let display = client.display();
    for row in 0..8 {
        println!(
            "│{:<40}│",
            display.row_text(row).chars().take(40).collect::<String>()
        );
    }
    println!("└{}┘", "─".repeat(40));
    println!("client SRTT estimate: {:.0} ms", client.srtt());
}
